"""Virtual CPU: VMX modes, vmexit dispatch, vmread/vmwrite enforcement.

Models the VT-x behaviours the paper leans on (§II):

* two orthogonal execution modes, VMX **root** (hypervisor) and
  **non-root** (guest);
* vmexits: synchronous traps from non-root to root mode, each charged a
  round-trip cost and dispatched to a hypervisor-installed handler;
* hypercalls: guest-initiated vmexits with a dispatch number;
* vmread/vmwrite: allowed freely in root mode; in non-root mode only when
  VMCS shadowing is on *and* the field is exposed in the shadow bitmaps —
  in which case the access hits the shadow VMCS with **no vmexit** (the
  property EPML exploits);
* the EPML ISA extension: a non-root vmwrite to ``GUEST_PML_ADDRESS``
  translates the guest-supplied GPA to an HPA through the EPT before
  storing it (paper §IV-D).
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_HYPERCALL,
    EV_VMEXIT,
    EV_VMREAD,
    EV_VMWRITE,
    CostModel,
)
from repro.errors import VmcsError
from repro.faults import injector as finj
from repro.faults.plan import FaultSite
from repro.hw import vmcs as vm
from repro.hw.ept import Ept
from repro.hw.interrupts import InterruptController
from repro.hw.pml import PmlCircuit
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["CpuMode", "ExitReason", "Vcpu"]


class CpuMode(enum.Enum):
    VMX_ROOT = "vmx_root"
    VMX_NON_ROOT = "vmx_non_root"


class ExitReason(enum.Enum):
    HYPERCALL = "hypercall"
    PML_FULL = "pml_full"
    EPT_VIOLATION = "ept_violation"
    SPP_VIOLATION = "spp_violation"
    EXTERNAL = "external"


ExitHandler = Callable[["Vcpu", object], object]


class Vcpu:
    """One virtual CPU belonging to a VM."""

    def __init__(
        self,
        vcpu_id: int,
        clock: SimClock,
        costs: CostModel,
        pml_capacity: int = 512,
    ) -> None:
        self.vcpu_id = vcpu_id
        self.clock = clock
        self.costs = costs
        self.mode = CpuMode.VMX_NON_ROOT  # guest running by default
        self.vmcs = vm.Vmcs(name=f"vmcs{vcpu_id}")
        self.pml = PmlCircuit(self.vmcs, capacity=pml_capacity, vcpu_id=vcpu_id)
        self.interrupts = InterruptController(clock, costs, vcpu_id=vcpu_id)
        self.ept: Ept | None = None  # set by the owning VM
        self._exit_handlers: dict[ExitReason, ExitHandler] = {}
        self.n_vmexits = 0
        #: PML-full vmexits swallowed by fault injection (batch vanished).
        self.n_dropped_vmexits = 0

    # ------------------------------------------------------------------
    # vmexit machinery
    # ------------------------------------------------------------------
    def install_exit_handler(self, reason: ExitReason, handler: ExitHandler) -> None:
        self._exit_handlers[reason] = handler

    def vmexit(self, reason: ExitReason, payload: object = None) -> object:
        """Trap to root mode, run the handler, resume non-root mode."""
        if (
            finj.ACTIVE is not None
            and reason is ExitReason.PML_FULL
            and finj.ACTIVE.should_fire(FaultSite.VMEXIT_DROP)
        ):
            # Delivery failure: no root-mode transition happens, so no
            # cost is charged and the handler never sees the batch.
            self.n_dropped_vmexits += 1
            return None
        handler = self._exit_handlers.get(reason)
        if handler is None:
            raise VmcsError(f"no handler installed for vmexit {reason}")
        self.n_vmexits += 1
        if otr.ACTIVE is not None:
            # Emitted exactly when the metric counter moves, so "vmexit
            # events in the trace == vmexit counts in the metrics" is a
            # checkable invariant, not a coincidence.
            otr.ACTIVE.emit(
                EventKind.VMEXIT, reason=reason.value, vcpu_id=self.vcpu_id
            )
            otr.ACTIVE.metrics.inc(f"vmexit.{reason.value}")
            # Per-vCPU dimension (prefix deliberately NOT "vmexit." — the
            # metrics==trace invariant matches that prefix exactly).
            otr.ACTIVE.metrics.inc(f"vcpu.{self.vcpu_id}.vmexit.{reason.value}")
        self.clock.charge(
            self.costs.params.vmexit_roundtrip_us,
            World.HYPERVISOR,
            EV_VMEXIT,
        )
        prev = self.mode
        self.mode = CpuMode.VMX_ROOT
        try:
            return handler(self, payload)
        finally:
            self.mode = prev

    def hypercall(self, nr: int, *args: object) -> object:
        """Guest-initiated vmexit with a dispatch number."""
        self.clock.charge(
            self.costs.params.hypercall_entry_us, World.HYPERVISOR, EV_HYPERCALL
        )
        return self.vmexit(ExitReason.HYPERCALL, (nr, args))

    # ------------------------------------------------------------------
    # vmread / vmwrite
    # ------------------------------------------------------------------
    def _charge_vmrw(self, event: str, us: float) -> None:
        world = (
            World.HYPERVISOR if self.mode is CpuMode.VMX_ROOT else World.KERNEL
        )
        self.clock.charge(us, world, event)

    def vmread(self, field: str) -> int:
        self._charge_vmrw(EV_VMREAD, self.costs.params.vmread_us)
        if self.mode is CpuMode.VMX_ROOT:
            return self.vmcs.read(field)
        if not self.vmcs.shadowing_enabled():
            raise VmcsError("vmread in non-root mode without VMCS shadowing")
        if field not in self.vmcs.shadow_read_fields:
            raise VmcsError(f"field {field!r} not exposed for shadow vmread")
        assert self.vmcs.link is not None
        return self.vmcs.link.read(field)

    def vmwrite(self, field: str, value: int) -> None:
        self._charge_vmrw(EV_VMWRITE, self.costs.params.vmwrite_us)
        if self.mode is CpuMode.VMX_ROOT:
            self.vmcs.write(field, value)
            return
        if not self.vmcs.shadowing_enabled():
            raise VmcsError("vmwrite in non-root mode without VMCS shadowing")
        if field not in self.vmcs.shadow_write_fields:
            raise VmcsError(f"field {field!r} not exposed for shadow vmwrite")
        assert self.vmcs.link is not None
        if field == vm.F_GUEST_PML_ADDRESS:
            # EPML ISA extension: the CPU translates the guest-supplied
            # GPA to an HPA through the EPT before storing it, so the
            # logging datapath writes to the right RAM location.
            if self.ept is None:
                raise VmcsError("EPML vmwrite requires an EPT")
            value = int(self.ept.translate([value])[0])
        self.vmcs.link.write(field, value)
