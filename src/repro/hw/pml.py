"""Page Modification Logging circuit, including the EPML extension.

Original Intel PML (§II-B): while the ``ENABLE_PML`` VMCS control is set,
each write that sets an EPT dirty bit 0 -> 1 logs the GPA into a 512-entry
PML buffer; ``PML_INDEX`` starts at 511 and counts down; when the buffer is
full the CPU raises a vmexit and the hypervisor drains it.

EPML hardware extension (§IV-D): a *second*, guest-managed buffer
(``GUEST_PML_ADDRESS``/``GUEST_PML_INDEX``).  The modified page-walk
circuit logs the **GVA** to the guest-level buffer (sparing the guest the
GPA->GVA reverse mapping) and the GPA to the hypervisor-level buffer.  A
full guest-level buffer raises a posted *self-IPI* handled inside the
guest — no vmexit.

Gating detail (inferred, documented in DESIGN.md): the hypervisor-level
buffer is gated on EPT dirty-bit transitions (hypervisor owns and clears
those bits); the guest-level buffer is gated on *guest PTE* dirty-bit
transitions, which the guest kernel owns and can clear without hypervisor
involvement — consistent with EPML's goal of keeping the hypervisor off
the critical path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.calibration import PML_BUFFER_ENTRIES
from repro.errors import PmlError
from repro.faults import injector as finj
from repro.faults.plan import FaultSite
from repro.hw import vmcs as vm
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["PmlBuffer", "PmlCircuit"]

DrainCallback = Callable[[np.ndarray], None]


class PmlBuffer:
    """One 4 KiB PML buffer: 512 uint64 slots plus a count-down index."""

    def __init__(self, capacity: int = PML_BUFFER_ENTRIES) -> None:
        if capacity <= 0:
            raise PmlError(f"PML buffer capacity must be > 0: {capacity}")
        self.capacity = capacity
        self.entries = np.zeros(capacity, dtype=np.uint64)
        self.index = capacity - 1  # next slot to fill; counts down

    @property
    def n_logged(self) -> int:
        return self.capacity - 1 - self.index

    @property
    def space(self) -> int:
        return self.index + 1

    def append(self, values: np.ndarray) -> int:
        """Fill up to ``space`` entries; returns how many were consumed."""
        n = min(len(values), self.space)
        if n:
            # Hardware fills from index downward; entry order within the
            # buffer is reversed, which the drain reverses back.
            lo = self.index - n + 1
            self.entries[lo:self.index + 1] = values[:n][::-1]
            self.index -= n
        return n

    def drain(self) -> np.ndarray:
        """Return logged entries in logging order and reset the index."""
        out = self.entries[self.index + 1:][::-1].copy()
        self.index = self.capacity - 1
        return out


class PmlCircuit:
    """The logging datapath attached to one vCPU.

    The circuit reads its enables from the vCPU's current VMCS each call,
    so hypervisor (ordinary VMCS) and guest (shadow VMCS via vmwrite)
    control it exactly as on real hardware.
    """

    def __init__(
        self,
        vmcs_obj: vm.Vmcs,
        capacity: int = PML_BUFFER_ENTRIES,
        vcpu_id: int = 0,
    ) -> None:
        self.vmcs = vmcs_obj
        self.capacity = capacity
        #: Owning vCPU (SMP: one circuit per vCPU; tags trace events).
        self.vcpu_id = vcpu_id
        self.hyp_buffer: PmlBuffer | None = None
        self.guest_buffer: PmlBuffer | None = None
        #: Hypervisor's PML-full vmexit handler (drains hyp buffer).
        self.on_hyp_full: DrainCallback | None = None
        #: Guest's self-IPI path (drains guest buffer).
        self.on_guest_full: DrainCallback | None = None
        self.n_hyp_full_events = 0
        self.n_guest_full_events = 0
        self.n_hyp_logged = 0
        self.n_guest_logged = 0
        #: Entries discarded because a full event found no drain handler
        #: (the circuit keeps logging consistently instead of trapping
        #: mid-batch; consumers must check these counters).
        self.n_hyp_dropped = 0
        self.n_guest_dropped = 0
        #: Entries lost to an injected buffer-full race (repro.faults).
        self.n_hyp_injected_drops = 0
        self.n_guest_injected_drops = 0

    # ------------------------------------------------------------------
    # configuration (mirrors VMCS field writes)
    # ------------------------------------------------------------------
    def configure_hyp_buffer(self) -> None:
        self.hyp_buffer = PmlBuffer(self.capacity)
        self.vmcs.write(vm.F_PML_ADDRESS, 1)
        self.vmcs.write(vm.F_PML_INDEX, self.hyp_buffer.index)

    def configure_guest_buffer(self) -> None:
        self.guest_buffer = PmlBuffer(self.capacity)
        self.vmcs.write(vm.F_GUEST_PML_ADDRESS, 1)
        self.vmcs.write(vm.F_GUEST_PML_INDEX, self.guest_buffer.index)

    def _guest_vmcs(self) -> vm.Vmcs:
        """Guest-owned fields live in the shadow VMCS when linked (EPML);
        hypervisor-owned fields always live in the ordinary VMCS."""
        return self.vmcs.link if self.vmcs.link is not None else self.vmcs

    def hyp_enabled(self) -> bool:
        return bool(self.vmcs.read(vm.F_CTRL_ENABLE_PML))

    def guest_enabled(self) -> bool:
        return bool(self._guest_vmcs().read(vm.F_CTRL_ENABLE_GUEST_PML))

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log_gpas(self, gpfns: np.ndarray) -> None:
        """Log newly-EPT-dirty GPFNs to the hypervisor-level buffer."""
        if not self.hyp_enabled() or len(gpfns) == 0:
            return
        if self.hyp_buffer is None:
            raise PmlError("PML enabled but no PML buffer configured")
        values = np.asarray(gpfns, dtype=np.uint64)
        if finj.ACTIVE is not None:
            kept = finj.ACTIVE.drop_entries(FaultSite.PML_ENTRY_DROP, values)
            dropped = int(values.size - kept.size)
            self.n_hyp_injected_drops += dropped
            if dropped and otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.PML_DROP,
                    level="hyp",
                    cause="injected",
                    n=dropped,
                    vcpu_id=self.vcpu_id,
                )
                otr.ACTIVE.metrics.inc("pml.hyp.injected_drops", dropped)
            values = kept
        self.n_hyp_logged += int(len(values))
        self._fill(self.hyp_buffer, values, self._raise_hyp_full)
        self.vmcs.write(vm.F_PML_INDEX, self.hyp_buffer.index)

    def log_gvas(self, vpns: np.ndarray) -> None:
        """Log newly-PTE-dirty VPNs to the guest-level buffer (EPML)."""
        if not self.guest_enabled() or len(vpns) == 0:
            return
        if self.guest_buffer is None:
            raise PmlError("guest PML enabled but no guest buffer configured")
        values = np.asarray(vpns, dtype=np.uint64)
        if finj.ACTIVE is not None:
            kept = finj.ACTIVE.drop_entries(FaultSite.PML_ENTRY_DROP, values)
            dropped = int(values.size - kept.size)
            self.n_guest_injected_drops += dropped
            if dropped and otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.PML_DROP,
                    level="guest",
                    cause="injected",
                    n=dropped,
                    vcpu_id=self.vcpu_id,
                )
                otr.ACTIVE.metrics.inc("pml.guest.injected_drops", dropped)
            values = kept
        self.n_guest_logged += int(len(values))
        self._fill(self.guest_buffer, values, self._raise_guest_full)
        self._guest_vmcs().write(vm.F_GUEST_PML_INDEX, self.guest_buffer.index)

    def _fill(
        self, buf: PmlBuffer, values: np.ndarray, on_full: Callable[[], None]
    ) -> None:
        pos = 0
        while pos < len(values):
            pos += buf.append(values[pos:])
            if buf.space == 0:
                on_full()

    # ------------------------------------------------------------------
    # full events
    # ------------------------------------------------------------------
    def _raise_hyp_full(self) -> None:
        # Atomic batch contract: a full event mid-batch must never abort
        # the log call (that would leave buffer/counters inconsistent for
        # the entries already consumed).  Without a handler the hardware
        # wraps silently; we drain, count the loss, and keep logging.
        self.n_hyp_full_events += 1
        assert self.hyp_buffer is not None
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.PML_FULL,
                level="hyp",
                occupancy=self.hyp_buffer.n_logged,
                handled=self.on_hyp_full is not None,
                vcpu_id=self.vcpu_id,
            )
            otr.ACTIVE.metrics.inc("pml.hyp.full_events")
            otr.ACTIVE.metrics.inc(f"pml.vcpu.{self.vcpu_id}.hyp.full_events")
            otr.ACTIVE.metrics.observe(
                "pml.occupancy_at_flush", self.hyp_buffer.n_logged
            )
        batch = self.hyp_buffer.drain()
        if self.on_hyp_full is None:
            self.n_hyp_dropped += int(len(batch))
            if otr.ACTIVE is not None and len(batch):
                otr.ACTIVE.emit(
                    EventKind.PML_DROP,
                    level="hyp",
                    cause="no_handler",
                    n=int(len(batch)),
                    vcpu_id=self.vcpu_id,
                )
                otr.ACTIVE.metrics.inc("pml.hyp.dropped", int(len(batch)))
        else:
            self.on_hyp_full(batch)

    def _raise_guest_full(self) -> None:
        self.n_guest_full_events += 1
        assert self.guest_buffer is not None
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.PML_FULL,
                level="guest",
                occupancy=self.guest_buffer.n_logged,
                handled=self.on_guest_full is not None,
                vcpu_id=self.vcpu_id,
            )
            otr.ACTIVE.metrics.inc("pml.guest.full_events")
            otr.ACTIVE.metrics.inc(f"pml.vcpu.{self.vcpu_id}.guest.full_events")
            otr.ACTIVE.metrics.observe(
                "pml.occupancy_at_flush", self.guest_buffer.n_logged
            )
        batch = self.guest_buffer.drain()
        if self.on_guest_full is None:
            self.n_guest_dropped += int(len(batch))
            if otr.ACTIVE is not None and len(batch):
                otr.ACTIVE.emit(
                    EventKind.PML_DROP,
                    level="guest",
                    cause="no_handler",
                    n=int(len(batch)),
                    vcpu_id=self.vcpu_id,
                )
                otr.ACTIVE.metrics.inc("pml.guest.dropped", int(len(batch)))
        else:
            self.on_guest_full(batch)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "n_hyp_full_events": self.n_hyp_full_events,
            "n_guest_full_events": self.n_guest_full_events,
            "n_hyp_logged": self.n_hyp_logged,
            "n_guest_logged": self.n_guest_logged,
            "n_hyp_dropped": self.n_hyp_dropped,
            "n_guest_dropped": self.n_guest_dropped,
            "n_hyp_injected_drops": self.n_hyp_injected_drops,
            "n_guest_injected_drops": self.n_guest_injected_drops,
        }

    # ------------------------------------------------------------------
    # explicit drains (harvest paths)
    # ------------------------------------------------------------------
    def drain_hyp(self) -> np.ndarray:
        if self.hyp_buffer is None:
            return np.empty(0, dtype=np.uint64)
        if otr.ACTIVE is not None:
            # Residual occupancy at an explicit harvest drain: the low end
            # of the flush-occupancy distribution (full events pin the top).
            otr.ACTIVE.metrics.observe(
                "pml.occupancy_at_flush", self.hyp_buffer.n_logged
            )
        out = self.hyp_buffer.drain()
        self.vmcs.write(vm.F_PML_INDEX, self.hyp_buffer.index)
        return out

    def drain_guest(self) -> np.ndarray:
        if self.guest_buffer is None:
            return np.empty(0, dtype=np.uint64)
        if otr.ACTIVE is not None:
            otr.ACTIVE.metrics.observe(
                "pml.occupancy_at_flush", self.guest_buffer.n_logged
            )
        out = self.guest_buffer.drain()
        self._guest_vmcs().write(vm.F_GUEST_PML_INDEX, self.guest_buffer.index)
        return out
