"""Intel SPP (Sub-Page write Permission) — the paper's stated next OoH
target (§III-D).

SPP refines EPT write permission from 4 KiB pages to 128-byte sub-pages:
an SPP-enabled EPT page carries a 32-bit write-permission vector (bit i
covers bytes ``[128*i, 128*(i+1))``).  A write to a write-protected
sub-page raises an *SPP-induced vmexit*.

The paper's motivation: secure heap allocators detect overflows
synchronously with guard *pages*, wasting 4 KiB per allocation; OoH-SPP
lets the guest allocator use 128-byte guard *sub-pages* instead, cutting
the waste by the 32 sub-pages per page (§III-D: "reduce that overhead by
a factor of 32").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InvalidAddressError

__all__ = ["SUBPAGES_PER_PAGE", "SUBPAGE_BYTES", "SppTable"]

SUBPAGES_PER_PAGE = 32
SUBPAGE_BYTES = 128

#: All sub-pages writable.
FULL_WRITE = np.uint32(0xFFFFFFFF)


class SppTable:
    """Per-VM sub-page permission table (the SPPTP-referenced structure).

    Pages absent from the table fall back to ordinary EPT permissions;
    registering a page makes its 32-bit write vector authoritative.
    """

    def __init__(self, n_guest_frames: int) -> None:
        if n_guest_frames <= 0:
            raise ConfigurationError(
                f"n_guest_frames must be > 0: {n_guest_frames}"
            )
        self.n_guest_frames = n_guest_frames
        self._vectors: dict[int, np.uint32] = {}
        self.n_violations = 0

    # ------------------------------------------------------------------
    def _check(self, gpfn: int) -> int:
        gpfn = int(gpfn)
        if not 0 <= gpfn < self.n_guest_frames:
            raise InvalidAddressError(f"GPFN out of range: {gpfn}")
        return gpfn

    def protect(self, gpfn: int, write_vector: int) -> None:
        """Install a 32-bit sub-page write-permission vector."""
        gpfn = self._check(gpfn)
        self._vectors[gpfn] = np.uint32(write_vector & 0xFFFFFFFF)

    def unprotect(self, gpfn: int) -> None:
        self._vectors.pop(self._check(gpfn), None)

    def is_protected(self, gpfn: int) -> bool:
        return self._check(gpfn) in self._vectors

    def vector(self, gpfn: int) -> int | None:
        return self._vectors.get(self._check(gpfn))

    # ------------------------------------------------------------------
    def check_write(self, gpfn: int, subpage: int) -> bool:
        """True if a write to ``subpage`` of ``gpfn`` is permitted.

        Counts a violation when it is not (the CPU would raise an
        SPP-induced vmexit).
        """
        if not 0 <= subpage < SUBPAGES_PER_PAGE:
            raise InvalidAddressError(f"sub-page index out of range: {subpage}")
        vec = self._vectors.get(self._check(gpfn))
        if vec is None:
            return True  # ordinary EPT permissions apply
        allowed = bool((int(vec) >> subpage) & 1)
        if not allowed:
            self.n_violations += 1
        return allowed

    @staticmethod
    def vector_allowing(subpages: np.ndarray | list[int]) -> int:
        """Build a write vector permitting exactly the given sub-pages."""
        vec = 0
        for s in np.asarray(subpages, dtype=np.int64).ravel():
            if not 0 <= s < SUBPAGES_PER_PAGE:
                raise InvalidAddressError(f"sub-page index out of range: {s}")
            vec |= 1 << int(s)
        return vec
