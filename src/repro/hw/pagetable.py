"""Guest page tables: GVA -> GPA mapping with x86-style PTE flag bits.

One :class:`PageTable` per process address space.  Virtual page numbers
(VPNs) index dense numpy arrays, which makes batch page walks vectorised
(DESIGN.md: the simulator processes page-access *batches*).

Flag semantics follow Linux:

* ``PRESENT``/``WRITABLE`` gate access; a write to a non-writable present
  page faults.
* ``DIRTY``/``ACCESSED`` are set by the MMU on access.
* ``SOFT_DIRTY`` is Linux's bit-55 tracking bit: ``clear_refs`` clears it
  *and write-protects the PTE*; the subsequent write fault re-sets it
  (paper §III-B).
* ``UFD_WP`` marks userfaultfd write-protected pages; a write delivers a
  fault to the registered userfaultfd instead of the kernel path.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ConfigurationError, InvalidAddressError

__all__ = [
    "PTE_PRESENT",
    "PTE_WRITABLE",
    "PTE_ACCESSED",
    "PTE_DIRTY",
    "PTE_SOFT_DIRTY",
    "PTE_UFD_WP",
    "PTE_ZERO",
    "PageTable",
]

PTE_PRESENT = np.uint16(1 << 0)
PTE_WRITABLE = np.uint16(1 << 1)
PTE_ACCESSED = np.uint16(1 << 2)
PTE_DIRTY = np.uint16(1 << 3)
PTE_SOFT_DIRTY = np.uint16(1 << 4)
PTE_UFD_WP = np.uint16(1 << 5)
#: Read-faulted anonymous page (zero-page mapping): read-only, clean; the
#: first write takes a COW-style fault that makes it writable + soft-dirty.
PTE_ZERO = np.uint16(1 << 6)


#: Process-wide unique PageTable ids (never reused, unlike ``id()``): the
#: MMU walk cache keys entries on them, so id reuse after GC must not be
#: able to alias a dead table's cached outcomes onto a new table.
_uid_counter = itertools.count(1)


class PageTable:
    """Dense VPN -> (GPFN, flags) table for one address space."""

    def __init__(self, n_pages: int) -> None:
        if n_pages <= 0:
            raise ConfigurationError(f"n_pages must be > 0: {n_pages}")
        self.n_pages = n_pages
        self.gpfn = np.full(n_pages, -1, dtype=np.int64)
        self.flags = np.zeros(n_pages, dtype=np.uint16)
        #: Walk-cache identity (see repro.hw.mmu): never-reused table id.
        self.uid = next(_uid_counter)
        #: Mutation generation: bumped by every operation that changes
        #: mappings or flag bits (map/unmap/set_flags/clear_flags, plus
        #: the MMU's in-walk A/D updates).  The MMU walk cache validates
        #: memoized batch outcomes against it, so any PTE mutation —
        #: notably a tracker's dirty-bit re-arm — invalidates replay.
        self.generation = 0
        # Lazily built GPFN->VPN index for reverse_lookup; invalidated by
        # any operation that changes which VPNs are mapped (map/unmap, or
        # flag updates touching PRESENT).  Host-side speedup only: the
        # *simulated* reverse-mapping cost (M17) is charged by the caller
        # and is unaffected.
        self._rev_index: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _check_vpns(self, vpns: np.ndarray) -> np.ndarray:
        arr = np.asarray(vpns, dtype=np.int64).ravel()
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_pages):
            raise InvalidAddressError("VPN out of address space")
        return arr

    def map(
        self,
        vpns: np.ndarray | list[int],
        gpfns: np.ndarray | list[int],
        writable: bool = True,
        soft_dirty: bool = True,
    ) -> None:
        """Install present mappings.

        New anonymous mappings are born soft-dirty (Linux semantics: a
        fresh page counts as modified until the next ``clear_refs``).
        """
        v = self._check_vpns(vpns)
        g = np.asarray(gpfns, dtype=np.int64).ravel()
        if v.size != g.size:
            raise ValueError("vpns and gpfns length mismatch")
        self.gpfn[v] = g
        f = PTE_PRESENT
        if writable:
            f |= PTE_WRITABLE
        if soft_dirty:
            f |= PTE_SOFT_DIRTY
        self.flags[v] = f
        self.generation += 1
        self._rev_index = None

    def unmap(self, vpns: np.ndarray | list[int]) -> np.ndarray:
        """Remove mappings; returns the GPFNs that were mapped."""
        v = self._check_vpns(vpns)
        gpfns = self.gpfn[v].copy()
        self.gpfn[v] = -1
        self.flags[v] = 0
        self.generation += 1
        self._rev_index = None
        return gpfns[gpfns >= 0]

    # ------------------------------------------------------------------
    def present_mask(self, vpns: np.ndarray | list[int]) -> np.ndarray:
        v = self._check_vpns(vpns)
        return (self.flags[v] & PTE_PRESENT) != 0

    def flag_mask(self, vpns: np.ndarray | list[int], flag: np.uint16) -> np.ndarray:
        v = self._check_vpns(vpns)
        return (self.flags[v] & flag) != 0

    def set_flags(self, vpns: np.ndarray | list[int], flag: np.uint16) -> None:
        v = self._check_vpns(vpns)
        self.flags[v] |= flag
        self.generation += 1
        if flag & PTE_PRESENT:
            self._rev_index = None

    def clear_flags(self, vpns: np.ndarray | list[int], flag: np.uint16) -> None:
        v = self._check_vpns(vpns)
        self.flags[v] &= ~flag
        self.generation += 1
        if flag & PTE_PRESENT:
            self._rev_index = None

    # ------------------------------------------------------------------
    def mapped_vpns(self) -> np.ndarray:
        """All VPNs with a present mapping."""
        return np.nonzero((self.flags & PTE_PRESENT) != 0)[0].astype(np.int64)

    def vpns_with_flag(self, flag: np.uint16) -> np.ndarray:
        return np.nonzero((self.flags & flag) != 0)[0].astype(np.int64)

    def translate(self, vpns: np.ndarray | list[int]) -> np.ndarray:
        """GPFNs for present VPNs; raises on unmapped entries."""
        v = self._check_vpns(vpns)
        g = self.gpfn[v]
        if np.any(g < 0):
            raise InvalidAddressError("translate of unmapped VPN")
        return g.copy()

    def _reverse_index(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted GPFNs, matching VPNs) for all present mappings.

        Built lazily on first use and invalidated by map/unmap, so a burst
        of reverse lookups against a stable table costs one O(M log M)
        sort and then O(K log M) per lookup instead of O(M log M) each.
        """
        if self._rev_index is None:
            mapped = self.mapped_vpns()
            table_g = self.gpfn[mapped]
            order = np.argsort(table_g, kind="stable")
            self._rev_index = (table_g[order], mapped[order])
        return self._rev_index

    def reverse_lookup(self, gpfns: np.ndarray | list[int]) -> np.ndarray:
        """GPFN -> VPN reverse mapping (what SPML's OoH Lib must do).

        Performed by scanning the table, exactly as the paper's userspace
        reverse mapping parses ``/proc/PID/pagemap``; the time cost (M17)
        is charged by the caller — the cached index below only cuts the
        *simulator's* wall-clock, never the simulated cost.  Unknown GPFNs
        map to -1.
        """
        g = np.asarray(gpfns, dtype=np.int64).ravel()
        sorted_g, sorted_v = self._reverse_index()
        idx = np.searchsorted(sorted_g, g)
        idx_clipped = np.minimum(idx, len(sorted_g) - 1) if len(sorted_g) else idx
        out = np.full(g.shape, -1, dtype=np.int64)
        if len(sorted_g):
            hit = sorted_g[idx_clipped] == g
            out[hit] = sorted_v[idx_clipped[hit]]
        return out
