"""MMU: batch page walks, fault routing, dirty-bit transitions, PML hooks.

Workloads present *page-access batches* (arrays of VPNs plus a write mask);
the MMU resolves each batch in vectorised passes:

1. missing pages   -> minor fault (or ufd ``miss`` fault) via the handlers
2. write-protected -> soft-dirty kernel fault or ufd ``write_protect`` fault
3. set PTE A/D bits; PTE dirty 0->1 transitions feed EPML's guest-level log
4. set EPT A/D bits; EPT dirty 0->1 transitions feed PML's hypervisor log
5. mutate physical frame contents for written pages

Fault *semantics and costs* belong to the guest kernel (the handlers
object); the MMU only detects, routes, and counts.  This mirrors hardware:
the MMU raises #PF / EPT violations, software decides what they mean.

Two walk implementations produce bit-identical outcomes:

* the **fused** walk (default) gathers ``pt.flags`` once and derives the
  present/writable/dirty masks from that single read, with one dedup pass
  feeding PTE bits, EPT bits, and content writes.  It is fronted by a
  **TLB fast path**: a sorted-unique batch whose pages are all TLB-cached,
  present, writable, and already PTE+EPT dirty cannot fault and cannot
  produce a 0->1 dirty transition (so nothing can be logged), exactly as
  a real TLB hit on a dirty writable translation skips the walk circuit;
* the **multipass** walk is the original five-pass reference, kept behind
  ``fused=False`` (or ``REPRO_FUSED_MMU=0``) so differential tests can
  pit the two against each other.

On top of the fused walk sits the **walk cache** (``REPRO_WALK_CACHE=0``
opts out): the memoized steady-state replay layer.  Every structure a
fast-path decision reads carries a cheap *generation counter* —
:attr:`PageTable.generation` (any mapping/flag mutation),
:attr:`Ept.generation` (map / A-D touch / harvest re-arm) and
:attr:`Tlb.generation` (invalidate/flush) — and a successful fast-path
batch is memoized keyed on (table identities, batch content, write mask)
with the three generations captured at memoization time.  A repeated
batch whose generations are unchanged *replays*: bulk content-token
write of the memoized host frames, fill accounting, done — no flag
gathers, no mask compares.  Replay can never swallow a dirty 0->1
transition because producing one requires a clear PTE or EPT dirty bit,
and every path that clears one (tracker re-arm via ``clear_flags``, PML
harvest via ``Ept.clear_dirty``) bumps the matching generation, which
invalidates the entry and forces the next access back through the walk.

:meth:`Mmu.access_segment` extends the same memoization to whole
*compiled plan segments* (:mod:`repro.guest.plan`): a run of batches
that previously all hit the fast path replays as one concatenated
content write plus per-batch result stamps, amortizing even the
per-batch cache probes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import InvalidAddressError, ProtectionFault
from repro.hw.ept import EPT_ACCESSED, EPT_DIRTY, Ept
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_UFD_WP,
    PTE_WRITABLE,
    PageTable,
)
from repro.hw.pml import PmlCircuit
from repro.hw.tlb import Tlb
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["FaultHandlers", "MmuResult", "Mmu"]


def _fused_default() -> bool:
    """Process-wide default for the fused walk (REPRO_FUSED_MMU=0 opts out)."""
    return os.environ.get("REPRO_FUSED_MMU", "1") not in ("0", "false", "no")


def _walk_cache_default() -> bool:
    """Process-wide default for the walk cache (REPRO_WALK_CACHE=0 opts out)."""
    return os.environ.get("REPRO_WALK_CACHE", "1") not in ("0", "false", "no")


#: Memoized batch outcomes kept per MMU (FIFO eviction).  Steady-state
#: workload loops touch a handful of distinct batches per process, so a
#: small cache captures them; the cap only bounds pathological churn.
_WALK_CACHE_CAP = 256
#: Memoized plan-segment outcomes kept per MMU (FIFO eviction).
_PLAN_CACHE_CAP = 64


def _as_run(h: np.ndarray) -> tuple[int, int] | None:
    """``(first, size)`` when ``h`` is a strict +1 ascending run.

    Written HPFNs usually are one (frames are handed out in allocation
    order), and proving it once at memoization time lets every replay
    slice-assign the content tokens instead of scatter-assigning.
    Duplicate frames (last-wins rewrites) never pass the check, so the
    run write is always token-identical to the fancy write.
    """
    if h.size == 0:
        return None
    if h.size > 1 and not bool((h[1:] - h[:-1] == 1).all()):
        return None
    return (int(h[0]), int(h.size))


class FaultHandlers(Protocol):
    """What the guest kernel must provide to resolve faults."""

    def handle_minor_fault(self, vpns: np.ndarray, write_mask: np.ndarray) -> None:
        """Demand-page missing VPNs (must leave them present).

        ``write_mask`` marks VPNs faulted by a write; read faults should
        install clean zero-page mappings (not soft-dirty)."""

    def handle_ufd_miss_fault(
        self, vpns: np.ndarray, write_mask: np.ndarray
    ) -> np.ndarray:
        """userfaultfd ``miss`` faults; returns the subset actually handled
        by ufd (the rest fall back to the kernel minor-fault path).
        ``write_mask`` marks VPNs faulted by writes (UFFDIO_COPY of real
        data) versus reads (UFFDIO_ZEROPAGE, not dirty)."""

    def handle_wp_fault(self, vpns: np.ndarray, ufd_mask: np.ndarray) -> None:
        """Write faults on present, non-writable pages.  ``ufd_mask`` marks
        the ones registered for ufd write-protect; the rest are soft-dirty
        faults.  Must leave every page writable."""


@dataclass
class MmuResult:
    """Per-batch accounting returned by :meth:`Mmu.access`."""

    n_accesses: int = 0
    n_writes: int = 0
    n_minor_faults: int = 0
    n_wp_faults: int = 0
    n_ufd_faults: int = 0
    newly_pte_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    newly_ept_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class Mmu:
    """One MMU per VM; operates on any of its processes' page tables."""

    def __init__(
        self,
        ept: Ept,
        host_mem: PhysicalMemory,
        pml: PmlCircuit,
        fused: bool | None = None,
        walk_cache: bool | None = None,
    ) -> None:
        self.ept = ept
        self.host_mem = host_mem
        self.pml = pml
        #: True selects the fused walk + TLB fast path; False the original
        #: multipass walk (differential-test reference).
        self.fused = _fused_default() if fused is None else fused
        #: Memoized fast-path batches, keyed on (pt.uid, tlb.uid, batch
        #: shape, write-mask kind); entries hold the three generation
        #: counters captured at memoization time plus the exact batch
        #: arrays and the written HPFNs.  ``None`` when disabled
        #: (REPRO_WALK_CACHE=0 or walk_cache=False).
        enabled = _walk_cache_default() if walk_cache is None else walk_cache
        self._cache: dict | None = {} if enabled else None
        #: Memoized plan segments (see :meth:`access_segment`).
        self._plan_cache: dict = {}
        #: Written HPFNs of the most recent fast-path/replay batch; None
        #: when the last batch took a walk.  access_segment reads this to
        #: build segment-level replay entries.
        self._last_h: np.ndarray | None = None
        #: Diagnostics: batches/accesses resolved by the TLB fast path
        #: (replayed batches count in both fast and replay totals).
        self.n_fast_batches = 0
        self.n_fast_accesses = 0
        self.n_replay_batches = 0
        self.n_replay_accesses = 0
        self.n_segment_replays = 0

    def access(
        self,
        pt: PageTable,
        tlb: Tlb,
        vpns: np.ndarray | list[int],
        write_mask: np.ndarray | bool,
        handlers: FaultHandlers,
        pml: PmlCircuit | None = None,
    ) -> MmuResult:
        """Resolve one access batch against ``pt``.

        ``write_mask`` may be a scalar bool (all reads / all writes) or a
        per-access boolean array.  ``pml`` selects the logging circuit of
        the vCPU executing the batch (SMP: each vCPU logs to its own
        buffers); it defaults to the circuit this MMU was built with
        (vCPU 0 — the single-vCPU configuration).
        """
        if pml is None:
            pml = self.pml
        v = np.asarray(vpns, dtype=np.int64).ravel()
        if np.isscalar(write_mask) or np.ndim(write_mask) == 0:
            # Scalar masks stay scalar until a walk needs the full array:
            # the replay path never materializes them.
            wbool = bool(write_mask)
            w = None
            n_writes = int(v.size) if wbool else 0
        else:
            wbool = False
            w = np.asarray(write_mask, dtype=bool).ravel()
            if v.size != w.size:
                raise ValueError("vpns and write_mask length mismatch")
            n_writes = int(w.sum())
        self._last_h = None
        res = MmuResult(n_accesses=int(v.size), n_writes=n_writes)
        if v.size == 0:
            return res
        if otr.ACTIVE is not None and n_writes:
            # Emitted before dispatch so fast-path, replay, fused and
            # multipass batches trace identically; the written-VPN set is
            # the ground truth the trace-invariant tests check collects
            # against (dirty reported ⊆ pages with a preceding write).
            s = otr.ACTIVE
            fields = {
                "n_writes": res.n_writes,
                "n_accesses": res.n_accesses,
                "vcpu_id": pml.vcpu_id,
            }
            if s.detail:
                written = v if w is None else v[w]
                fields["vpns"] = [int(x) for x in np.unique(written)]
            s.emit(EventKind.WRITE, **fields)
            s.metrics.inc("mmu.write_batches")
            s.metrics.inc("mmu.writes", res.n_writes)
        if not self.fused:
            w_full = np.full(v.shape, wbool) if w is None else w
            return self._access_multipass(pt, tlb, v, w_full, handlers, res, pml)
        cache = self._cache
        key = None
        if cache is not None:
            # Cheap discriminator first; exactness is verified against the
            # stored arrays below (hashing the batch content would cost
            # more than the replay itself).
            wk = wbool if w is None else ("m", n_writes)
            key = (pt.uid, tlb.uid, int(v[0]), int(v[-1]), int(v.size), wk)
            ent = cache.get(key)
            if ent is not None:
                if (
                    ent[0] == pt.generation
                    and ent[1] == self.ept.generation
                    and ent[2] == tlb.generation
                ):
                    # Raw == instead of np.array_equal: the key already
                    # pins dtype/size, and the wrapper's asarray/shape
                    # plumbing costs more than the comparison itself.
                    if (ent[3] == v).all() and (
                        ent[4] is None or (ent[4] == w).all()
                    ):
                        # Replay: generations prove no mapping, flag or
                        # cached-translation change since this batch hit
                        # the fast path, so the memoized outcome (written
                        # HPFNs, no faults, no dirty transitions, full TLB
                        # hit) still holds verbatim.
                        h = ent[5]
                        if ent[6] is not None:
                            self.host_mem.write_trusted_run(*ent[6])
                        else:
                            self.host_mem.write_trusted(h)
                        tlb.note_refill(v.size)
                        self.n_fast_batches += 1
                        self.n_fast_accesses += res.n_accesses
                        self.n_replay_batches += 1
                        self.n_replay_accesses += res.n_accesses
                        self._last_h = h
                        return res
                else:
                    del cache[key]
        w_full = np.full(v.shape, wbool) if w is None else w
        h = self._try_fast_path(pt, tlb, v, w_full)
        if h is not None:
            self.n_fast_batches += 1
            self.n_fast_accesses += res.n_accesses
            self._last_h = h
            if cache is not None:
                if len(cache) >= _WALK_CACHE_CAP and key not in cache:
                    cache.pop(next(iter(cache)))
                # Copies detach the entry from caller-owned buffers the
                # workload may mutate in place between iterations.
                cache[key] = (
                    pt.generation,
                    self.ept.generation,
                    tlb.generation,
                    v.copy(),
                    None if w is None else w.copy(),
                    h,
                    _as_run(h),
                )
            return res
        return self._access_fused(pt, tlb, v, w_full, handlers, res, pml)

    # ------------------------------------------------------------------
    # TLB fast path
    # ------------------------------------------------------------------
    def _try_fast_path(self, pt: PageTable, tlb: Tlb, v, w) -> np.ndarray | None:
        """Resolve the batch without a walk when nothing can change.

        Applicable to sorted-unique batches (no dedup pass needed) whose
        pages are all TLB-cached with PTE present+accessed (+writable and
        PTE/EPT dirty for written pages): no fault can fire and no dirty
        bit can transition 0->1, so no PML entry can be logged.  The only
        remaining architectural effects are the content-token writes and
        the TLB refresh, both performed here bit-identically to the walk.

        Returns the written HPFNs (possibly empty) on success — exactly
        what the walk cache needs to replay the batch — or ``None`` when
        the batch must take the full walk.
        """
        if v.size > 1 and not (v[1:] > v[:-1]).all():
            return None  # not sorted-unique: take the full walk
        if v[0] < 0 or v[-1] >= pt.n_pages:
            return None  # out of range: let the walk raise
        if not tlb.cached_all(v):
            return None
        f = pt.flags[v]
        need_r = PTE_PRESENT | PTE_ACCESSED
        if not ((f & need_r) == need_r).all():
            return None
        fw = f[w]
        need_w = PTE_WRITABLE | PTE_DIRTY
        if fw.size and not ((fw & need_w) == need_w).all():
            return None
        g = pt.gpfn[v]
        if (g < 0).any() or int(g.max()) >= self.ept.n_guest_frames:
            return None
        ef = self.ept.flags[g]
        if not ((ef & EPT_ACCESSED) != 0).all():
            return None
        efw = ef[w]
        if efw.size and not ((efw & EPT_DIRTY) != 0).all():
            return None
        h = self.ept.hpfn[g[w]]
        if h.size and (h < 0).any():
            return None
        self.host_mem.write(h)
        tlb.fill(v)
        return h

    # ------------------------------------------------------------------
    # fused walk (default)
    # ------------------------------------------------------------------
    def _access_fused(
        self,
        pt: PageTable,
        tlb: Tlb,
        v,
        w,
        handlers: FaultHandlers,
        res: MmuResult,
        pml: PmlCircuit,
    ) -> MmuResult:
        if int(v.min()) < 0 or int(v.max()) >= pt.n_pages:
            raise InvalidAddressError("VPN out of address space")
        flags = pt.flags[v]

        # -- 1. missing pages -------------------------------------------
        present = (flags & PTE_PRESENT) != 0
        if not present.all():
            missing, inv_m = np.unique(v[~present], return_inverse=True)
            missing_w = np.zeros(missing.shape, dtype=bool)
            missing_w[inv_m[w[~present]]] = True
            handled_by_ufd = handlers.handle_ufd_miss_fault(missing, missing_w)
            res.n_ufd_faults += int(len(handled_by_ufd))
            still = ~np.isin(missing, handled_by_ufd)
            if still.any():
                handlers.handle_minor_fault(missing[still], missing_w[still])
                res.n_minor_faults += int(still.sum())
            flags = pt.flags[v]
            if not ((flags & PTE_PRESENT) != 0).all():
                raise ProtectionFault("fault handler left pages unmapped")

        # -- 2. write-protection faults ----------------------------------
        any_w = bool(w.any())
        if any_w:
            writable = (flags[w] & PTE_WRITABLE) != 0
            if not writable.all():
                faulting = np.unique(v[w][~writable])
                ufd_mask = (pt.flags[faulting] & PTE_UFD_WP) != 0
                res.n_ufd_faults += int(ufd_mask.sum())
                res.n_wp_faults += int((~ufd_mask).sum())
                handlers.handle_wp_fault(faulting, ufd_mask)
                flags = pt.flags[v]
                if not ((flags[w] & PTE_WRITABLE) != 0).all():
                    raise ProtectionFault("WP fault handler left pages read-only")

        # -- 3+4. one dedup pass feeds PTE bits, EPT bits, content writes
        uniq_v, first_idx, inv = np.unique(
            v, return_index=True, return_inverse=True
        )
        uniq_w = np.zeros(uniq_v.shape, dtype=bool)
        uniq_w[inv[w]] = True
        fu = flags[first_idx]
        newf = fu | PTE_ACCESSED
        if any_w:
            was_clean = uniq_w & ((fu & PTE_DIRTY) == 0)
            res.newly_pte_dirty = uniq_v[was_clean]
            newf = np.where(uniq_w, newf | PTE_DIRTY, newf)
            pt.flags[uniq_v] = newf
            pt.generation += 1  # direct flag write bypasses set_flags
            # EPML guest-level logging: GVAs whose PTE dirty bit was set.
            pml.log_gvas(res.newly_pte_dirty)
        else:
            pt.flags[uniq_v] = newf
            pt.generation += 1  # direct flag write bypasses set_flags
        gpfns = pt.gpfn[uniq_v]
        if (gpfns < 0).any():
            raise InvalidAddressError("translate of unmapped VPN")
        res.newly_ept_dirty = self.ept.touch(gpfns, uniq_w)
        # Hypervisor-level PML logging: GPAs whose EPT dirty bit was set.
        pml.log_gpas(res.newly_ept_dirty)

        # -- 5. content mutation + TLB -----------------------------------
        if uniq_w.any():
            hpfns = self.ept.translate(gpfns[uniq_w])
            self.host_mem.write(hpfns)
        tlb.fill(uniq_v)
        return res

    # ------------------------------------------------------------------
    # original multipass walk (reference; fused=False)
    # ------------------------------------------------------------------
    def _access_multipass(
        self,
        pt: PageTable,
        tlb: Tlb,
        v,
        w,
        handlers: FaultHandlers,
        res: MmuResult,
        pml: PmlCircuit,
    ) -> MmuResult:
        # -- 1. missing pages -------------------------------------------
        present = pt.present_mask(v)
        if not present.all():
            missing, inv_m = np.unique(v[~present], return_inverse=True)
            missing_w = np.zeros(missing.shape, dtype=bool)
            np.logical_or.at(missing_w, inv_m, w[~present])
            handled_by_ufd = handlers.handle_ufd_miss_fault(missing, missing_w)
            res.n_ufd_faults += int(len(handled_by_ufd))
            still = ~np.isin(missing, handled_by_ufd)
            if still.any():
                handlers.handle_minor_fault(missing[still], missing_w[still])
                res.n_minor_faults += int(still.sum())
            present = pt.present_mask(v)
            if not present.all():
                raise ProtectionFault("fault handler left pages unmapped")

        # -- 2. write-protection faults ----------------------------------
        if w.any():
            wv = v[w]
            writable = pt.flag_mask(wv, PTE_WRITABLE)
            if not writable.all():
                faulting = np.unique(wv[~writable])
                ufd_mask = pt.flag_mask(faulting, PTE_UFD_WP)
                res.n_ufd_faults += int(ufd_mask.sum())
                res.n_wp_faults += int((~ufd_mask).sum())
                handlers.handle_wp_fault(faulting, ufd_mask)
                if not pt.flag_mask(wv, PTE_WRITABLE).all():
                    raise ProtectionFault("WP fault handler left pages read-only")

        # -- 3. PTE accessed/dirty bits ----------------------------------
        pt.set_flags(v, PTE_ACCESSED)
        if w.any():
            wv_unique = np.unique(v[w])
            was_clean = ~pt.flag_mask(wv_unique, PTE_DIRTY)
            res.newly_pte_dirty = wv_unique[was_clean]
            pt.set_flags(wv_unique, PTE_DIRTY)
            # EPML guest-level logging: GVAs whose PTE dirty bit was set.
            pml.log_gvas(res.newly_pte_dirty)

        # -- 4. EPT accessed/dirty bits ----------------------------------
        uniq_v, inv = np.unique(v, return_inverse=True)
        uniq_w = np.zeros(uniq_v.shape, dtype=bool)
        np.logical_or.at(uniq_w, inv, w)
        gpfns = pt.translate(uniq_v)
        res.newly_ept_dirty = self.ept.touch(gpfns, uniq_w)
        # Hypervisor-level PML logging: GPAs whose EPT dirty bit was set.
        pml.log_gpas(res.newly_ept_dirty)

        # -- 5. content mutation + TLB -----------------------------------
        if uniq_w.any():
            hpfns = self.ept.translate(gpfns[uniq_w])
            self.host_mem.write(hpfns)
        tlb.fill(uniq_v)
        return res

    # ------------------------------------------------------------------
    # plan-segment execution (walk cache, level 2)
    # ------------------------------------------------------------------
    def access_segment(
        self,
        pt: PageTable,
        tlb: Tlb,
        seg,
        handlers: FaultHandlers,
        pml: PmlCircuit | None = None,
    ) -> list[MmuResult]:
        """Execute one compiled plan segment (a run of access batches).

        ``seg`` is a :class:`repro.guest.plan.PlanSegment`.  The slow path
        simply loops :meth:`access` over the segment's batches; when every
        batch resolved via fast path or replay, the segment's combined
        outcome (concatenated written HPFNs + per-batch stats) is memoized
        keyed on ``(seg.uid, pt.uid, tlb.uid)``.  A later execution whose
        three generations are unchanged replays the whole segment with one
        bulk content write and per-batch result stamps — skipping even the
        per-batch cache probes.  Segments are immutable (plan arrays are
        frozen copies), so ``seg.uid`` fully identifies the batch content.

        Not applicable (falls back to the per-batch loop) for transient
        segments (``seg.uid is None``), multipass mode, a disabled walk
        cache, or detailed tracing (which wants per-batch written-VPN
        lists the memoized stats don't keep).
        """
        if pml is None:
            pml = self.pml
        cacheable = (
            self._cache is not None
            and self.fused
            and seg.uid is not None
            and not (otr.ACTIVE is not None and otr.ACTIVE.detail)
        )
        if cacheable:
            key = (seg.uid, pt.uid, tlb.uid)
            ent = self._plan_cache.get(key)
            if ent is not None:
                if (
                    ent[0] == pt.generation
                    and ent[1] == self.ept.generation
                    and ent[2] == tlb.generation
                ):
                    return self._replay_segment(
                        tlb, ent[3], ent[4], ent[5], ent[6], pml
                    )
                del self._plan_cache[key]
        results: list[MmuResult] = []
        hs: list[np.ndarray] | None = [] if cacheable else None
        for v, wk in seg.batches:
            results.append(self.access(pt, tlb, v, wk, handlers, pml=pml))
            if hs is not None:
                if self._last_h is None:
                    hs = None  # a batch took a walk: segment not replayable
                else:
                    hs.append(self._last_h)
        if hs is not None and results:
            h_all = (
                np.concatenate(hs) if len(hs) > 1
                else hs[0] if hs
                else np.empty(0, dtype=np.int64)
            )
            stats = [(r.n_accesses, r.n_writes) for r in results]
            n_pages = sum(s[0] for s in stats)
            if (
                len(self._plan_cache) >= _PLAN_CACHE_CAP
                and key not in self._plan_cache
            ):
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[key] = (
                pt.generation,
                self.ept.generation,
                tlb.generation,
                h_all,
                n_pages,
                stats,
                _as_run(h_all),
            )
        return results

    def _replay_segment(
        self,
        tlb: Tlb,
        h_all: np.ndarray,
        n_pages: int,
        stats: list[tuple[int, int]],
        run: tuple[int, int] | None,
        pml: PmlCircuit,
    ) -> list[MmuResult]:
        """Replay a memoized segment bit-identically to the batch loop.

        Per-batch WRITE trace events fire in order with the same fields;
        the content writes collapse into one ``write_trusted`` (numpy
        fancy assignment is last-wins sequential, so the concatenation is
        token-identical to per-batch writes); fills collapse into one
        counter bump (``note_refill`` — every page provably still cached).
        """
        s = otr.ACTIVE
        results = []
        for na, nw in stats:
            if s is not None and nw:
                s.emit(
                    EventKind.WRITE,
                    n_writes=nw,
                    n_accesses=na,
                    vcpu_id=pml.vcpu_id,
                )
                s.metrics.inc("mmu.write_batches")
                s.metrics.inc("mmu.writes", nw)
            results.append(MmuResult(n_accesses=na, n_writes=nw))
        if run is not None:
            self.host_mem.write_trusted_run(*run)
        else:
            self.host_mem.write_trusted(h_all)
        tlb.note_refill(n_pages)
        nb = len(stats)
        self.n_fast_batches += nb
        self.n_fast_accesses += n_pages
        self.n_replay_batches += nb
        self.n_replay_accesses += n_pages
        self.n_segment_replays += 1
        return results

    # ------------------------------------------------------------------
    def read_page_contents(self, pt: PageTable, vpns: np.ndarray) -> np.ndarray:
        """Content tokens for present VPNs (checkpoint dump path)."""
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        return self.host_mem.read(hpfns)

    def write_page_contents(
        self, pt: PageTable, vpns: np.ndarray, tokens: np.ndarray
    ) -> None:
        """Store content tokens into present VPNs (restore path)."""
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        self.host_mem.store(hpfns, tokens)

    def map_page_contents(
        self, pt: PageTable, vpns: np.ndarray, tokens: np.ndarray
    ) -> None:
        """:meth:`write_page_contents` minus the store-path checks.

        Serverless snapshot restore maps thousands of instances from the
        same snapshot; ``vpns`` comes from the page table's own mapped set
        and ``tokens`` from a snapshot array of identical length, so the
        per-instance validation would be pure overhead.
        """
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        self.host_mem.store_trusted(hpfns, tokens)
