"""MMU: batch page walks, fault routing, dirty-bit transitions, PML hooks.

Workloads present *page-access batches* (arrays of VPNs plus a write mask);
the MMU resolves each batch in vectorised passes:

1. missing pages   -> minor fault (or ufd ``miss`` fault) via the handlers
2. write-protected -> soft-dirty kernel fault or ufd ``write_protect`` fault
3. set PTE A/D bits; PTE dirty 0->1 transitions feed EPML's guest-level log
4. set EPT A/D bits; EPT dirty 0->1 transitions feed PML's hypervisor log
5. mutate physical frame contents for written pages

Fault *semantics and costs* belong to the guest kernel (the handlers
object); the MMU only detects, routes, and counts.  This mirrors hardware:
the MMU raises #PF / EPT violations, software decides what they mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import ProtectionFault
from repro.hw.ept import Ept
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_UFD_WP,
    PTE_WRITABLE,
    PageTable,
)
from repro.hw.pml import PmlCircuit
from repro.hw.tlb import Tlb

__all__ = ["FaultHandlers", "MmuResult", "Mmu"]


class FaultHandlers(Protocol):
    """What the guest kernel must provide to resolve faults."""

    def handle_minor_fault(self, vpns: np.ndarray, write_mask: np.ndarray) -> None:
        """Demand-page missing VPNs (must leave them present).

        ``write_mask`` marks VPNs faulted by a write; read faults should
        install clean zero-page mappings (not soft-dirty)."""

    def handle_ufd_miss_fault(
        self, vpns: np.ndarray, write_mask: np.ndarray
    ) -> np.ndarray:
        """userfaultfd ``miss`` faults; returns the subset actually handled
        by ufd (the rest fall back to the kernel minor-fault path).
        ``write_mask`` marks VPNs faulted by writes (UFFDIO_COPY of real
        data) versus reads (UFFDIO_ZEROPAGE, not dirty)."""

    def handle_wp_fault(self, vpns: np.ndarray, ufd_mask: np.ndarray) -> None:
        """Write faults on present, non-writable pages.  ``ufd_mask`` marks
        the ones registered for ufd write-protect; the rest are soft-dirty
        faults.  Must leave every page writable."""


@dataclass
class MmuResult:
    """Per-batch accounting returned by :meth:`Mmu.access`."""

    n_accesses: int = 0
    n_writes: int = 0
    n_minor_faults: int = 0
    n_wp_faults: int = 0
    n_ufd_faults: int = 0
    newly_pte_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    newly_ept_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class Mmu:
    """One MMU per VM; operates on any of its processes' page tables."""

    def __init__(self, ept: Ept, host_mem: PhysicalMemory, pml: PmlCircuit) -> None:
        self.ept = ept
        self.host_mem = host_mem
        self.pml = pml

    def access(
        self,
        pt: PageTable,
        tlb: Tlb,
        vpns: np.ndarray | list[int],
        write_mask: np.ndarray | bool,
        handlers: FaultHandlers,
    ) -> MmuResult:
        """Resolve one access batch against ``pt``.

        ``write_mask`` may be a scalar bool (all reads / all writes) or a
        per-access boolean array.
        """
        v = np.asarray(vpns, dtype=np.int64).ravel()
        if np.isscalar(write_mask) or np.ndim(write_mask) == 0:
            w = np.full(v.shape, bool(write_mask))
        else:
            w = np.asarray(write_mask, dtype=bool).ravel()
        if v.size != w.size:
            raise ValueError("vpns and write_mask length mismatch")
        res = MmuResult(n_accesses=int(v.size), n_writes=int(w.sum()))
        if v.size == 0:
            return res

        # -- 1. missing pages -------------------------------------------
        present = pt.present_mask(v)
        if not present.all():
            missing, inv_m = np.unique(v[~present], return_inverse=True)
            missing_w = np.zeros(missing.shape, dtype=bool)
            np.logical_or.at(missing_w, inv_m, w[~present])
            handled_by_ufd = handlers.handle_ufd_miss_fault(missing, missing_w)
            res.n_ufd_faults += int(len(handled_by_ufd))
            still = ~np.isin(missing, handled_by_ufd)
            if still.any():
                handlers.handle_minor_fault(missing[still], missing_w[still])
                res.n_minor_faults += int(still.sum())
            present = pt.present_mask(v)
            if not present.all():
                raise ProtectionFault("fault handler left pages unmapped")

        # -- 2. write-protection faults ----------------------------------
        if w.any():
            wv = v[w]
            writable = pt.flag_mask(wv, PTE_WRITABLE)
            if not writable.all():
                faulting = np.unique(wv[~writable])
                ufd_mask = pt.flag_mask(faulting, PTE_UFD_WP)
                res.n_ufd_faults += int(ufd_mask.sum())
                res.n_wp_faults += int((~ufd_mask).sum())
                handlers.handle_wp_fault(faulting, ufd_mask)
                if not pt.flag_mask(wv, PTE_WRITABLE).all():
                    raise ProtectionFault("WP fault handler left pages read-only")

        # -- 3. PTE accessed/dirty bits ----------------------------------
        pt.set_flags(v, PTE_ACCESSED)
        if w.any():
            wv_unique = np.unique(v[w])
            was_clean = ~pt.flag_mask(wv_unique, PTE_DIRTY)
            res.newly_pte_dirty = wv_unique[was_clean]
            pt.set_flags(wv_unique, PTE_DIRTY)
            # EPML guest-level logging: GVAs whose PTE dirty bit was set.
            self.pml.log_gvas(res.newly_pte_dirty)

        # -- 4. EPT accessed/dirty bits ----------------------------------
        uniq_v, inv = np.unique(v, return_inverse=True)
        uniq_w = np.zeros(uniq_v.shape, dtype=bool)
        np.logical_or.at(uniq_w, inv, w)
        gpfns = pt.translate(uniq_v)
        res.newly_ept_dirty = self.ept.touch(gpfns, uniq_w)
        # Hypervisor-level PML logging: GPAs whose EPT dirty bit was set.
        self.pml.log_gpas(res.newly_ept_dirty)

        # -- 5. content mutation + TLB -----------------------------------
        if uniq_w.any():
            hpfns = self.ept.translate(gpfns[uniq_w])
            self.host_mem.write(hpfns)
        tlb.fill(uniq_v)
        return res

    # ------------------------------------------------------------------
    def read_page_contents(self, pt: PageTable, vpns: np.ndarray) -> np.ndarray:
        """Content tokens for present VPNs (checkpoint dump path)."""
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        return self.host_mem.read(hpfns)

    def write_page_contents(
        self, pt: PageTable, vpns: np.ndarray, tokens: np.ndarray
    ) -> None:
        """Store content tokens into present VPNs (restore path)."""
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        self.host_mem.store(hpfns, tokens)
