"""MMU: batch page walks, fault routing, dirty-bit transitions, PML hooks.

Workloads present *page-access batches* (arrays of VPNs plus a write mask);
the MMU resolves each batch in vectorised passes:

1. missing pages   -> minor fault (or ufd ``miss`` fault) via the handlers
2. write-protected -> soft-dirty kernel fault or ufd ``write_protect`` fault
3. set PTE A/D bits; PTE dirty 0->1 transitions feed EPML's guest-level log
4. set EPT A/D bits; EPT dirty 0->1 transitions feed PML's hypervisor log
5. mutate physical frame contents for written pages

Fault *semantics and costs* belong to the guest kernel (the handlers
object); the MMU only detects, routes, and counts.  This mirrors hardware:
the MMU raises #PF / EPT violations, software decides what they mean.

Two walk implementations produce bit-identical outcomes:

* the **fused** walk (default) gathers ``pt.flags`` once and derives the
  present/writable/dirty masks from that single read, with one dedup pass
  feeding PTE bits, EPT bits, and content writes.  It is fronted by a
  **TLB fast path**: a sorted-unique batch whose pages are all TLB-cached,
  present, writable, and already PTE+EPT dirty cannot fault and cannot
  produce a 0->1 dirty transition (so nothing can be logged), exactly as
  a real TLB hit on a dirty writable translation skips the walk circuit;
* the **multipass** walk is the original five-pass reference, kept behind
  ``fused=False`` (or ``REPRO_FUSED_MMU=0``) so differential tests can
  pit the two against each other.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import InvalidAddressError, ProtectionFault
from repro.hw.ept import EPT_ACCESSED, EPT_DIRTY, Ept
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_UFD_WP,
    PTE_WRITABLE,
    PageTable,
)
from repro.hw.pml import PmlCircuit
from repro.hw.tlb import Tlb
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["FaultHandlers", "MmuResult", "Mmu"]


def _fused_default() -> bool:
    """Process-wide default for the fused walk (REPRO_FUSED_MMU=0 opts out)."""
    return os.environ.get("REPRO_FUSED_MMU", "1") not in ("0", "false", "no")


class FaultHandlers(Protocol):
    """What the guest kernel must provide to resolve faults."""

    def handle_minor_fault(self, vpns: np.ndarray, write_mask: np.ndarray) -> None:
        """Demand-page missing VPNs (must leave them present).

        ``write_mask`` marks VPNs faulted by a write; read faults should
        install clean zero-page mappings (not soft-dirty)."""

    def handle_ufd_miss_fault(
        self, vpns: np.ndarray, write_mask: np.ndarray
    ) -> np.ndarray:
        """userfaultfd ``miss`` faults; returns the subset actually handled
        by ufd (the rest fall back to the kernel minor-fault path).
        ``write_mask`` marks VPNs faulted by writes (UFFDIO_COPY of real
        data) versus reads (UFFDIO_ZEROPAGE, not dirty)."""

    def handle_wp_fault(self, vpns: np.ndarray, ufd_mask: np.ndarray) -> None:
        """Write faults on present, non-writable pages.  ``ufd_mask`` marks
        the ones registered for ufd write-protect; the rest are soft-dirty
        faults.  Must leave every page writable."""


@dataclass
class MmuResult:
    """Per-batch accounting returned by :meth:`Mmu.access`."""

    n_accesses: int = 0
    n_writes: int = 0
    n_minor_faults: int = 0
    n_wp_faults: int = 0
    n_ufd_faults: int = 0
    newly_pte_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    newly_ept_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class Mmu:
    """One MMU per VM; operates on any of its processes' page tables."""

    def __init__(
        self,
        ept: Ept,
        host_mem: PhysicalMemory,
        pml: PmlCircuit,
        fused: bool | None = None,
    ) -> None:
        self.ept = ept
        self.host_mem = host_mem
        self.pml = pml
        #: True selects the fused walk + TLB fast path; False the original
        #: multipass walk (differential-test reference).
        self.fused = _fused_default() if fused is None else fused
        #: Diagnostics: batches/accesses resolved by the TLB fast path.
        self.n_fast_batches = 0
        self.n_fast_accesses = 0

    def access(
        self,
        pt: PageTable,
        tlb: Tlb,
        vpns: np.ndarray | list[int],
        write_mask: np.ndarray | bool,
        handlers: FaultHandlers,
        pml: PmlCircuit | None = None,
    ) -> MmuResult:
        """Resolve one access batch against ``pt``.

        ``write_mask`` may be a scalar bool (all reads / all writes) or a
        per-access boolean array.  ``pml`` selects the logging circuit of
        the vCPU executing the batch (SMP: each vCPU logs to its own
        buffers); it defaults to the circuit this MMU was built with
        (vCPU 0 — the single-vCPU configuration).
        """
        if pml is None:
            pml = self.pml
        v = np.asarray(vpns, dtype=np.int64).ravel()
        if np.isscalar(write_mask) or np.ndim(write_mask) == 0:
            w = np.full(v.shape, bool(write_mask))
        else:
            w = np.asarray(write_mask, dtype=bool).ravel()
        if v.size != w.size:
            raise ValueError("vpns and write_mask length mismatch")
        res = MmuResult(n_accesses=int(v.size), n_writes=int(w.sum()))
        if v.size == 0:
            return res
        if otr.ACTIVE is not None and res.n_writes:
            # Emitted before dispatch so fast-path, fused and multipass
            # batches trace identically; the written-VPN set is the
            # ground truth the trace-invariant tests check collects
            # against (dirty reported ⊆ pages with a preceding write).
            s = otr.ACTIVE
            fields = {
                "n_writes": res.n_writes,
                "n_accesses": res.n_accesses,
                "vcpu_id": pml.vcpu_id,
            }
            if s.detail:
                fields["vpns"] = [int(x) for x in np.unique(v[w])]
            s.emit(EventKind.WRITE, **fields)
            s.metrics.inc("mmu.write_batches")
            s.metrics.inc("mmu.writes", res.n_writes)
        if not self.fused:
            return self._access_multipass(pt, tlb, v, w, handlers, res, pml)
        if self._try_fast_path(pt, tlb, v, w):
            self.n_fast_batches += 1
            self.n_fast_accesses += res.n_accesses
            return res
        return self._access_fused(pt, tlb, v, w, handlers, res, pml)

    # ------------------------------------------------------------------
    # TLB fast path
    # ------------------------------------------------------------------
    def _try_fast_path(self, pt: PageTable, tlb: Tlb, v, w) -> bool:
        """Resolve the batch without a walk when nothing can change.

        Applicable to sorted-unique batches (no dedup pass needed) whose
        pages are all TLB-cached with PTE present+accessed (+writable and
        PTE/EPT dirty for written pages): no fault can fire and no dirty
        bit can transition 0->1, so no PML entry can be logged.  The only
        remaining architectural effects are the content-token writes and
        the TLB refresh, both performed here bit-identically to the walk.
        """
        if v.size > 1 and not (v[1:] > v[:-1]).all():
            return False  # not sorted-unique: take the full walk
        if v[0] < 0 or v[-1] >= pt.n_pages:
            return False  # out of range: let the walk raise
        if not tlb.cached_all(v):
            return False
        f = pt.flags[v]
        need_r = PTE_PRESENT | PTE_ACCESSED
        if not ((f & need_r) == need_r).all():
            return False
        fw = f[w]
        need_w = PTE_WRITABLE | PTE_DIRTY
        if fw.size and not ((fw & need_w) == need_w).all():
            return False
        g = pt.gpfn[v]
        if (g < 0).any() or int(g.max()) >= self.ept.n_guest_frames:
            return False
        ef = self.ept.flags[g]
        if not ((ef & EPT_ACCESSED) != 0).all():
            return False
        efw = ef[w]
        if efw.size and not ((efw & EPT_DIRTY) != 0).all():
            return False
        h = self.ept.hpfn[g[w]]
        if h.size and (h < 0).any():
            return False
        self.host_mem.write(h)
        tlb.fill(v)
        return True

    # ------------------------------------------------------------------
    # fused walk (default)
    # ------------------------------------------------------------------
    def _access_fused(
        self,
        pt: PageTable,
        tlb: Tlb,
        v,
        w,
        handlers: FaultHandlers,
        res: MmuResult,
        pml: PmlCircuit,
    ) -> MmuResult:
        if int(v.min()) < 0 or int(v.max()) >= pt.n_pages:
            raise InvalidAddressError("VPN out of address space")
        flags = pt.flags[v]

        # -- 1. missing pages -------------------------------------------
        present = (flags & PTE_PRESENT) != 0
        if not present.all():
            missing, inv_m = np.unique(v[~present], return_inverse=True)
            missing_w = np.zeros(missing.shape, dtype=bool)
            missing_w[inv_m[w[~present]]] = True
            handled_by_ufd = handlers.handle_ufd_miss_fault(missing, missing_w)
            res.n_ufd_faults += int(len(handled_by_ufd))
            still = ~np.isin(missing, handled_by_ufd)
            if still.any():
                handlers.handle_minor_fault(missing[still], missing_w[still])
                res.n_minor_faults += int(still.sum())
            flags = pt.flags[v]
            if not ((flags & PTE_PRESENT) != 0).all():
                raise ProtectionFault("fault handler left pages unmapped")

        # -- 2. write-protection faults ----------------------------------
        any_w = bool(w.any())
        if any_w:
            writable = (flags[w] & PTE_WRITABLE) != 0
            if not writable.all():
                faulting = np.unique(v[w][~writable])
                ufd_mask = (pt.flags[faulting] & PTE_UFD_WP) != 0
                res.n_ufd_faults += int(ufd_mask.sum())
                res.n_wp_faults += int((~ufd_mask).sum())
                handlers.handle_wp_fault(faulting, ufd_mask)
                flags = pt.flags[v]
                if not ((flags[w] & PTE_WRITABLE) != 0).all():
                    raise ProtectionFault("WP fault handler left pages read-only")

        # -- 3+4. one dedup pass feeds PTE bits, EPT bits, content writes
        uniq_v, first_idx, inv = np.unique(
            v, return_index=True, return_inverse=True
        )
        uniq_w = np.zeros(uniq_v.shape, dtype=bool)
        uniq_w[inv[w]] = True
        fu = flags[first_idx]
        newf = fu | PTE_ACCESSED
        if any_w:
            was_clean = uniq_w & ((fu & PTE_DIRTY) == 0)
            res.newly_pte_dirty = uniq_v[was_clean]
            newf = np.where(uniq_w, newf | PTE_DIRTY, newf)
            pt.flags[uniq_v] = newf
            # EPML guest-level logging: GVAs whose PTE dirty bit was set.
            pml.log_gvas(res.newly_pte_dirty)
        else:
            pt.flags[uniq_v] = newf
        gpfns = pt.gpfn[uniq_v]
        if (gpfns < 0).any():
            raise InvalidAddressError("translate of unmapped VPN")
        res.newly_ept_dirty = self.ept.touch(gpfns, uniq_w)
        # Hypervisor-level PML logging: GPAs whose EPT dirty bit was set.
        pml.log_gpas(res.newly_ept_dirty)

        # -- 5. content mutation + TLB -----------------------------------
        if uniq_w.any():
            hpfns = self.ept.translate(gpfns[uniq_w])
            self.host_mem.write(hpfns)
        tlb.fill(uniq_v)
        return res

    # ------------------------------------------------------------------
    # original multipass walk (reference; fused=False)
    # ------------------------------------------------------------------
    def _access_multipass(
        self,
        pt: PageTable,
        tlb: Tlb,
        v,
        w,
        handlers: FaultHandlers,
        res: MmuResult,
        pml: PmlCircuit,
    ) -> MmuResult:
        # -- 1. missing pages -------------------------------------------
        present = pt.present_mask(v)
        if not present.all():
            missing, inv_m = np.unique(v[~present], return_inverse=True)
            missing_w = np.zeros(missing.shape, dtype=bool)
            np.logical_or.at(missing_w, inv_m, w[~present])
            handled_by_ufd = handlers.handle_ufd_miss_fault(missing, missing_w)
            res.n_ufd_faults += int(len(handled_by_ufd))
            still = ~np.isin(missing, handled_by_ufd)
            if still.any():
                handlers.handle_minor_fault(missing[still], missing_w[still])
                res.n_minor_faults += int(still.sum())
            present = pt.present_mask(v)
            if not present.all():
                raise ProtectionFault("fault handler left pages unmapped")

        # -- 2. write-protection faults ----------------------------------
        if w.any():
            wv = v[w]
            writable = pt.flag_mask(wv, PTE_WRITABLE)
            if not writable.all():
                faulting = np.unique(wv[~writable])
                ufd_mask = pt.flag_mask(faulting, PTE_UFD_WP)
                res.n_ufd_faults += int(ufd_mask.sum())
                res.n_wp_faults += int((~ufd_mask).sum())
                handlers.handle_wp_fault(faulting, ufd_mask)
                if not pt.flag_mask(wv, PTE_WRITABLE).all():
                    raise ProtectionFault("WP fault handler left pages read-only")

        # -- 3. PTE accessed/dirty bits ----------------------------------
        pt.set_flags(v, PTE_ACCESSED)
        if w.any():
            wv_unique = np.unique(v[w])
            was_clean = ~pt.flag_mask(wv_unique, PTE_DIRTY)
            res.newly_pte_dirty = wv_unique[was_clean]
            pt.set_flags(wv_unique, PTE_DIRTY)
            # EPML guest-level logging: GVAs whose PTE dirty bit was set.
            pml.log_gvas(res.newly_pte_dirty)

        # -- 4. EPT accessed/dirty bits ----------------------------------
        uniq_v, inv = np.unique(v, return_inverse=True)
        uniq_w = np.zeros(uniq_v.shape, dtype=bool)
        np.logical_or.at(uniq_w, inv, w)
        gpfns = pt.translate(uniq_v)
        res.newly_ept_dirty = self.ept.touch(gpfns, uniq_w)
        # Hypervisor-level PML logging: GPAs whose EPT dirty bit was set.
        pml.log_gpas(res.newly_ept_dirty)

        # -- 5. content mutation + TLB -----------------------------------
        if uniq_w.any():
            hpfns = self.ept.translate(gpfns[uniq_w])
            self.host_mem.write(hpfns)
        tlb.fill(uniq_v)
        return res

    # ------------------------------------------------------------------
    def read_page_contents(self, pt: PageTable, vpns: np.ndarray) -> np.ndarray:
        """Content tokens for present VPNs (checkpoint dump path)."""
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        return self.host_mem.read(hpfns)

    def write_page_contents(
        self, pt: PageTable, vpns: np.ndarray, tokens: np.ndarray
    ) -> None:
        """Store content tokens into present VPNs (restore path)."""
        gpfns = pt.translate(vpns)
        hpfns = self.ept.translate(gpfns)
        self.host_mem.store(hpfns, tokens)
