"""Simulated physical memory and frame allocation.

Page *contents* are modelled as 64-bit content tokens rather than 4 KiB of
bytes: a token changes on every write and is copied verbatim by
checkpoint/restore.  This preserves everything the paper's systems observe
(dirty-ness, content identity for dump/restore verification) while keeping
memory O(8 bytes/page), which lets the test suite run 1 GB-footprint
experiments.

Two instances exist per experiment: the *host* physical memory (frames are
HPFNs, owned by the hypervisor) and each VM's *guest* physical memory view
(frames are GPFNs, owned by the guest kernel).  Both use the same classes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    InvalidAddressError,
    OutOfFramesError,
    TransientError,
)
from repro.faults import injector as finj
from repro.faults.plan import FaultSite

__all__ = ["FrameAllocator", "PhysicalMemory"]


class FrameAllocator:
    """Allocates frame numbers from a fixed pool, LIFO free list.

    The free list is a pre-sized numpy array used as a stack (``_top``
    entries are valid), not a Python list: a 5 GB VM has ~1.4M frames and
    experiment harnesses build fresh stacks constantly, so list-of-int
    construction used to dominate stack-build wall-clock.  Allocation
    order is bit-identical to the original list implementation.
    """

    def __init__(self, n_frames: int) -> None:
        if n_frames <= 0:
            raise ConfigurationError(f"n_frames must be > 0: {n_frames}")
        self.n_frames = n_frames
        # Free frames stored as a stack; allocate from the end.
        self._free = np.arange(n_frames - 1, -1, -1, dtype=np.int64)
        self._top = n_frames  # number of valid entries in _free
        self._allocated = np.zeros(n_frames, dtype=bool)

    @property
    def n_free(self) -> int:
        return self._top

    @property
    def n_allocated(self) -> int:
        return self.n_frames - self._top

    def alloc(self, count: int) -> np.ndarray:
        """Allocate ``count`` frames; raises :class:`OutOfFramesError`."""
        if count < 0:
            raise ValueError(f"count must be >= 0: {count}")
        if (
            count
            and finj.ACTIVE is not None
            and finj.ACTIVE.should_fire(FaultSite.FRAME_EXHAUSTION)
        ):
            raise TransientError(
                f"frame allocator transiently exhausted (injected): "
                f"{count} frames requested, reclaim in progress"
            )
        if count > self._top:
            raise OutOfFramesError(
                f"requested {count} frames, only {self._top} free"
            )
        frames = self._free[self._top - count:self._top].copy()
        self._top -= count
        self._allocated[frames] = True
        return frames

    def free(self, frames: np.ndarray | list[int]) -> None:
        arr = np.asarray(frames, dtype=np.int64).ravel()
        if arr.size == 0:
            return
        if np.any(arr < 0) or np.any(arr >= self.n_frames):
            raise InvalidAddressError("frame number out of range")
        if not np.all(self._allocated[arr]):
            raise InvalidAddressError("double free of physical frame")
        self._allocated[arr] = False
        self._free[self._top:self._top + arr.size] = arr
        self._top += arr.size

    def is_allocated(self, frame: int) -> bool:
        return bool(self._allocated[frame])


class PhysicalMemory:
    """Frame pool plus per-frame content tokens.

    A content token is a uint64 that changes on every write; reads return
    the current token.  Token 0 means "never written" (zero page).
    """

    def __init__(self, n_frames: int) -> None:
        self.allocator = FrameAllocator(n_frames)
        self._content = np.zeros(n_frames, dtype=np.uint64)
        self._write_seq = np.uint64(0)

    @property
    def n_frames(self) -> int:
        return self.allocator.n_frames

    def alloc(self, count: int) -> np.ndarray:
        frames = self.allocator.alloc(count)
        self._content[frames] = 0  # fresh frames are zeroed
        return frames

    def free(self, frames: np.ndarray | list[int]) -> None:
        self.allocator.free(frames)

    # ------------------------------------------------------------------
    def write(self, frames: np.ndarray | list[int]) -> None:
        """Mutate frame contents (each write yields a fresh token)."""
        arr = np.asarray(frames, dtype=np.int64).ravel()
        if arr.size == 0:
            return
        self._check(arr)
        n = np.uint64(arr.size)
        tokens = np.arange(1, arr.size + 1, dtype=np.uint64) + self._write_seq
        self._write_seq += n
        self._content[arr] = tokens

    def write_trusted(self, frames: np.ndarray) -> None:
        """:meth:`write` minus conversion and bounds checks.

        Hot-path variant for the MMU walk cache: ``frames`` is an int64
        array that was bounds-checked when the batch outcome was memoized
        and is replayed unmodified, so the min/max scan would be pure
        overhead.  Token assignment is bit-identical to :meth:`write`.
        """
        if frames.size == 0:
            return
        # Single fused arange: same tokens as ``write``'s arange + add,
        # one temporary instead of two.  Go through Python ints so the
        # uint64 + int promotion rules can't change the dtype.
        start = int(self._write_seq) + 1
        tokens = np.arange(start, start + frames.size, dtype=np.uint64)
        self._write_seq += np.uint64(frames.size)
        self._content[frames] = tokens

    def write_trusted_run(self, first: int, size: int) -> None:
        """:meth:`write_trusted` for a contiguous ascending frame run.

        The walk cache proves ``frames == arange(first, first + size)``
        once, at memoization time; replay then slice-assigns instead of
        scatter-assigning, which is ~5x cheaper at batch sizes.  Token
        assignment is bit-identical to :meth:`write`.
        """
        if size == 0:
            return
        start = int(self._write_seq) + 1
        self._content[first:first + size] = np.arange(
            start, start + size, dtype=np.uint64
        )
        self._write_seq += np.uint64(size)

    def store_trusted(self, frames: np.ndarray, tokens: np.ndarray) -> None:
        """:meth:`store` minus conversion and bounds checks.

        Hot-path variant for serverless snapshot restore: ``frames`` comes
        straight from a page-table translate of mapped VPNs (already
        validated) and ``tokens`` from a snapshot array of matching size,
        so the per-restore min/max scan would be pure overhead across
        thousands of short-lived instances.
        """
        self._content[frames] = tokens

    def read(self, frames: np.ndarray | list[int]) -> np.ndarray:
        """Return content tokens of the given frames."""
        arr = np.asarray(frames, dtype=np.int64).ravel()
        self._check(arr)
        return self._content[arr].copy()

    def store(self, frames: np.ndarray | list[int], tokens: np.ndarray) -> None:
        """Overwrite frame contents with explicit tokens (restore path)."""
        arr = np.asarray(frames, dtype=np.int64).ravel()
        tok = np.asarray(tokens, dtype=np.uint64).ravel()
        if arr.size != tok.size:
            raise ValueError("frames and tokens length mismatch")
        self._check(arr)
        self._content[arr] = tok

    def _check(self, arr: np.ndarray) -> None:
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_frames):
            raise InvalidAddressError("physical frame out of range")
