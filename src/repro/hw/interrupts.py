"""Virtual interrupt delivery: event channels and posted interrupts.

Two delivery paths matter to the paper:

* **Virtual interrupts / event channels** (SPML): the hypervisor signals
  the guest, which costs a vmexit-like transition on real hardware when
  the guest is running.
* **Posted interrupts** (EPML): the processor delivers an interrupt
  directly to a guest in VMX non-root mode *without a vmexit*; EPML uses a
  posted *self-IPI* to notify the guest that its guest-level PML buffer is
  full (paper §IV-D).

Delivery is synchronous in the simulator (single timeline): posting an
interrupt immediately runs the registered handler.
"""

from __future__ import annotations

from typing import Callable

from repro.core.clock import SimClock, World
from repro.core.costs import EV_SELF_IPI, CostModel
from repro.errors import ConfigurationError
from repro.faults import injector as finj
from repro.faults.plan import FaultSite
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = [
    "VECTOR_OOH_PML_FULL",
    "VECTOR_TLB_SHOOTDOWN",
    "InterruptController",
]

#: Vector the OoH module registers for the EPML buffer-full self-IPI.
VECTOR_OOH_PML_FULL = 0xEC
#: Vector for SPP-violation notifications injected by the hypervisor
#: (OoH-SPP extension, paper §III-D).
VECTOR_OOH_SPP_VIOLATION = 0xED
#: Vector the guest kernel registers for cross-vCPU TLB shootdowns (SMP).
VECTOR_TLB_SHOOTDOWN = 0xEE

Handler = Callable[[int], None]


class InterruptController:
    """Per-vCPU interrupt routing with posted-interrupt support."""

    def __init__(self, clock: SimClock, costs: CostModel, vcpu_id: int = 0) -> None:
        self._clock = clock
        self._costs = costs
        self.vcpu_id = vcpu_id
        self._handlers: dict[int, Handler] = {}
        self.n_posted = 0
        self.n_virtual = 0
        #: Self-IPIs swallowed / deferred by fault injection.
        self.n_lost = 0
        self.n_delayed = 0
        self._delayed: list[int] = []

    def register(self, vector: int, handler: Handler) -> None:
        if not 0 <= vector <= 0xFF:
            raise ConfigurationError(f"interrupt vector out of range: {vector:#x}")
        self._handlers[vector] = handler

    def unregister(self, vector: int) -> None:
        self._handlers.pop(vector, None)

    def post(self, vector: int) -> bool:
        """Posted-interrupt delivery (no vmexit). Returns handled?"""
        self.n_posted += 1
        if finj.ACTIVE is not None:
            if finj.ACTIVE.should_fire(FaultSite.LOST_SELF_IPI):
                self.n_lost += 1
                if otr.ACTIVE is not None:
                    otr.ACTIVE.emit(
                        EventKind.SELF_IPI,
                        vector=vector,
                        outcome="lost",
                        vcpu_id=self.vcpu_id,
                    )
                    otr.ACTIVE.metrics.inc("self_ipi.lost")
                return False
            if finj.ACTIVE.should_fire(FaultSite.DELAYED_SELF_IPI):
                self.n_delayed += 1
                self._delayed.append(vector)
                if otr.ACTIVE is not None:
                    otr.ACTIVE.emit(
                        EventKind.SELF_IPI,
                        vector=vector,
                        outcome="delayed",
                        vcpu_id=self.vcpu_id,
                    )
                    otr.ACTIVE.metrics.inc("self_ipi.delayed")
                return False
        if self._delayed:
            self.flush_delayed()
        return self._deliver(vector)

    def ipi(self, vector: int) -> bool:
        """Reliable inter-processor interrupt (TLB shootdowns, SMP).

        Real shootdown IPIs are delivered with guaranteed semantics (the
        initiating CPU spins until every target acknowledges), so this
        path is deliberately *not* subject to the lost/delayed self-IPI
        fault injection that models EPML's best-effort posted interrupts.
        """
        self.n_posted += 1
        return self._deliver(vector)

    def flush_delayed(self) -> int:
        """Deliver any injection-deferred self-IPIs; returns how many."""
        pending, self._delayed = self._delayed, []
        for vector in pending:
            self._deliver(vector)
        return len(pending)

    def _deliver(self, vector: int) -> bool:
        self._clock.charge(
            self._costs.params.self_ipi_us, World.KERNEL, EV_SELF_IPI
        )
        handler = self._handlers.get(vector)
        if otr.ACTIVE is not None:
            outcome = "delivered" if handler is not None else "unhandled"
            otr.ACTIVE.emit(
                EventKind.SELF_IPI,
                vector=vector,
                outcome=outcome,
                vcpu_id=self.vcpu_id,
            )
            otr.ACTIVE.metrics.inc(f"self_ipi.{outcome}")
        if handler is None:
            return False
        handler(vector)
        return True

    def inject_virtual(self, vector: int) -> bool:
        """Hypervisor-originated virtual interrupt (event channel)."""
        self.n_virtual += 1
        handler = self._handlers.get(vector)
        if handler is None:
            return False
        handler(vector)
        return True
