"""TLB model.

The simulator is functional, not cycle-accurate, so the TLB's role is
bookkeeping: soft-dirty tracking is only correct if ``clear_refs`` flushes
cached translations (otherwise writes through stale writable entries would
escape tracking — the real-Linux bug class the flush exists to prevent).
We model a per-address-space set of cached VPNs so tests can assert the
flush discipline, and we count flushes so the cost model can charge them.

The MMU's fused fast path (:meth:`repro.hw.mmu.Mmu.access`) consults
:meth:`cached_all` before skipping the page walk, so every code path that
downgrades a cached translation (``clear_refs`` write-protection, ufd
write-protect arming, EPML/oracle dirty-bit re-arming, heap unmaps,
process exit) must call :meth:`invalidate` or :meth:`flush` — the same
discipline real kernels follow with ``invlpg``/TLB shootdowns.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["Tlb"]

#: Process-wide unique TLB ids for the MMU walk cache (never reused).
_uid_counter = itertools.count(1)


class Tlb:
    """Cached-translation bitmap for one address space on one vCPU.

    SMP: each vCPU has its own TLB, so an address space holds one ``Tlb``
    per vCPU of the VM; ``vcpu_id`` tags trace events and lets the guest
    kernel target cross-vCPU shootdowns at the right structure.
    """

    def __init__(self, n_pages: int, vcpu_id: int = 0) -> None:
        self._cached = np.zeros(n_pages, dtype=bool)
        self.vcpu_id = vcpu_id
        self.n_flushes = 0
        self.n_fills = 0
        self.n_invalidations = 0
        #: Walk-cache identity (see repro.hw.mmu): never-reused TLB id.
        self.uid = next(_uid_counter)
        #: Downgrade generation: bumped by invalidate/flush (the only
        #: operations that can *remove* cached translations).  Fills only
        #: add entries, so they leave it untouched — a memoized fast-path
        #: batch whose pages were all cached stays cached until the next
        #: invalidation, which is exactly what the MMU walk cache checks.
        self.generation = 0

    def fill(self, vpns: np.ndarray) -> None:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        self._cached[v] = True
        self.n_fills += int(v.size)

    def cached_mask(self, vpns: np.ndarray) -> np.ndarray:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        return self._cached[v].copy()

    def cached_all(self, vpns: np.ndarray) -> bool:
        """True when every VPN has a cached translation.

        Hot-path helper for the MMU's fused fast path: no defensive copy,
        no bounds check (the MMU validates the batch first).
        """
        return bool(self._cached[vpns].all())

    def cached_any(self, vpns: np.ndarray) -> bool:
        """True when at least one VPN has a cached translation (shootdown
        filter: a remote vCPU caching nothing needs no IPI)."""
        v = np.asarray(vpns, dtype=np.int64).ravel()
        return bool(self._cached[v].any())

    def note_refill(self, n: int) -> None:
        """Account a fill of ``n`` already-cached VPNs without the scatter.

        Replay-path helper: when the walk cache has proven (via
        :attr:`generation`) that no invalidation happened since the batch
        was memoized, every VPN is still cached, so the fill's bitmap
        write is a no-op — only the fill counter advances, bit-identically
        to :meth:`fill`.
        """
        self.n_fills += int(n)

    def invalidate(self, vpns: np.ndarray) -> None:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        self._cached[v] = False
        self.n_invalidations += int(v.size)
        self.generation += 1

    def flush(self) -> None:
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.TLB_FLUSH,
                n_cached=int(self._cached.sum()),
                vcpu_id=self.vcpu_id,
            )
            otr.ACTIVE.metrics.inc("tlb.flushes")
        self._cached[:] = False
        self.n_flushes += 1
        self.generation += 1

    @property
    def n_cached(self) -> int:
        return int(self._cached.sum())
