"""TLB model.

The simulator is functional, not cycle-accurate, so the TLB's role is
bookkeeping: soft-dirty tracking is only correct if ``clear_refs`` flushes
cached translations (otherwise writes through stale writable entries would
escape tracking — the real-Linux bug class the flush exists to prevent).
We model a per-address-space set of cached VPNs so tests can assert the
flush discipline, and we count flushes so the cost model can charge them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tlb"]


class Tlb:
    """Cached-translation bitmap for one address space."""

    def __init__(self, n_pages: int) -> None:
        self._cached = np.zeros(n_pages, dtype=bool)
        self.n_flushes = 0
        self.n_fills = 0

    def fill(self, vpns: np.ndarray) -> None:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        self._cached[v] = True
        self.n_fills += int(v.size)

    def cached_mask(self, vpns: np.ndarray) -> np.ndarray:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        return self._cached[v].copy()

    def invalidate(self, vpns: np.ndarray) -> None:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        self._cached[v] = False

    def flush(self) -> None:
        self._cached[:] = False
        self.n_flushes += 1

    @property
    def n_cached(self) -> int:
        return int(self._cached.sum())
