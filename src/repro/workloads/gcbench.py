"""GCBench: the classic GC torture test (Boehm/Ellis/Kovac).

Faithful port of the benchmark the paper uses for Boehm (§VI-A, Table III:
*array size*, *lived tree depth*, *stretch tree depth*):

1. build and drop a *stretch* tree (max depth) to size the heap;
2. build a *long-lived* perfect binary tree and a long-lived double
   array (every other element set);
3. for each depth d = 4, 6, ... max: allocate ``NumIters(d)`` temporary
   trees top-down and bottom-up, dropping them all — the allocation storm
   the collector must keep up with.

Tree construction is vectorised: a batch of k perfect trees of depth d is
allocated as one contiguous id block and wired level-by-level in heap
order.  ``scale`` multiplies the iteration counts (tree shapes stay
faithful) so tests and quick benches can run the Table III configurations
in bounded time.

GCBench only makes sense on a GC heap: it requires a
:class:`~repro.workloads.base.GcContext`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGE_SIZE, PAGES_PER_MB
from repro.errors import WorkloadError
from repro.workloads.base import GcContext, MemoryContext, Workload

__all__ = ["GcBench", "build_trees_batch"]

NODE_BYTES = 32
MIN_TREE_DEPTH = 4
#: Nodes allocated per construction batch (keeps numpy batches large).
BATCH_NODES = 100_000


def tree_size(depth: int) -> int:
    """Nodes in a perfect binary tree of the given depth."""
    return (1 << (depth + 1)) - 1


def num_iters(stretch_depth: int, depth: int) -> int:
    """GCBench's iteration count: allocate ~2 stretch-trees worth."""
    return max(1, 2 * tree_size(stretch_depth) // tree_size(depth))


def build_trees_batch(heap, k: int, depth: int) -> np.ndarray:
    """Allocate and wire ``k`` perfect binary trees; returns root ids."""
    per = tree_size(depth)
    ids = heap.alloc(k * per, NODE_BYTES).reshape(k, per)
    n_internal = (per - 1) // 2
    if n_internal:
        j = np.arange(n_internal)
        parents = ids[:, j].ravel()
        heap.set_refs(
            np.concatenate([parents, parents]),
            np.concatenate([ids[:, 2 * j + 1].ravel(), ids[:, 2 * j + 2].ravel()]),
        )
    return ids[:, 0]


@dataclass
class GcBench(Workload):
    array_size: int = 500_000
    long_lived_depth: int = 16
    stretch_depth: int = 18
    mem_mb: float = 15.07
    scale: float = 1.0
    name: str = "gcbench"

    @classmethod
    def from_config(cls, cfg, scale: float = 1.0):
        """Build GCBench from a Table III cell (scale shrinks NumIters)."""
        return cls(
            config_name=cfg.config,
            array_size=cfg.params["array_size"],
            long_lived_depth=cfg.params["long_lived_depth"],
            stretch_depth=cfg.params["stretch_depth"],
            mem_mb=cfg.mem_mb,
            scale=scale,
            params=dict(cfg.params),
        )

    @property
    def footprint_pages(self) -> int:
        return int(round(self.mem_mb * PAGES_PER_MB))

    def _run(self, ctx: MemoryContext) -> None:
        if not isinstance(ctx, GcContext):
            raise WorkloadError("GCBench requires a GC heap (GcContext)")
        heap, gc = ctx.heap, ctx.gc

        def make_dropped_trees(total: int, depth: int) -> None:
            """Temporary trees: allocated, never rooted, become garbage."""
            per = tree_size(depth)
            batch = max(1, BATCH_NODES // per)
            made = 0
            while made < total:
                k = min(batch, total - made)
                build_trees_batch(heap, k, depth)
                ctx.compute(k * per * 0.02)  # Populate()'s own work
                made += k
                gc.maybe_collect()

        # 1. Stretch tree, immediately dropped.
        make_dropped_trees(1, self.stretch_depth)
        gc.maybe_collect()

        # 2. Long-lived structures.
        long_lived_root = build_trees_batch(heap, 1, self.long_lived_depth)
        heap.add_roots(long_lived_root)
        array_pages = max(1, self.array_size * 8 // PAGE_SIZE)
        array_ids = heap.alloc(array_pages, PAGE_SIZE)
        heap.add_roots(array_ids)
        heap.write_objs(array_ids)  # "set every other element"
        ctx.compute(self.array_size * 0.002)
        gc.maybe_collect()

        # 3. The allocation storm.
        for depth in range(MIN_TREE_DEPTH, self.long_lived_depth + 1, 2):
            iters = max(1, int(num_iters(self.stretch_depth, depth) * self.scale))
            # Top-down and bottom-up construction allocate the same nodes;
            # the page-level behaviour is identical, so both halves run
            # through the batch builder.
            make_dropped_trees(iters, depth)
            make_dropped_trees(iters, depth)

        # Long-lived tree/array must have survived (checked by tests).
        if not heap.alive[long_lived_root].all():
            raise WorkloadError("GCBench long-lived tree was collected")
