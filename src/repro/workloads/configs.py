"""Table III: per-application configurations and memory footprints.

Every entry reproduces a row of the paper's Table III: the application's
parameters for the *Small*, *Medium* and *Large* configurations and the
measured memory consumption, which sizes the simulated process.

``make_workload`` is the factory the experiment harness uses; ``scale``
(0 < scale <= 1) shrinks iteration counts — *not* footprints — so the test
suite can exercise full configurations quickly.  Footprint-sensitive
results (Table I, Fig. 4) always use the real sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AppConfig", "TABLE_III", "CONFIG_NAMES", "make_workload", "APP_NAMES"]

CONFIG_NAMES = ("small", "medium", "large")


@dataclass(frozen=True)
class AppConfig:
    """One cell of Table III."""

    app: str
    config: str
    mem_mb: float
    params: dict


def _cfg(app: str, config: str, mem_mb: float, **params) -> AppConfig:
    return AppConfig(app=app, config=config, mem_mb=mem_mb, params=dict(params))


TABLE_III: dict[str, dict[str, AppConfig]] = {
    "gcbench": {
        "small": _cfg("gcbench", "small", 15.07,
                      array_size=500_000, long_lived_depth=16, stretch_depth=18),
        "medium": _cfg("gcbench", "medium", 67.76,
                       array_size=650_000, long_lived_depth=18, stretch_depth=20),
        "large": _cfg("gcbench", "large", 223.41,
                      array_size=750_000, long_lived_depth=20, stretch_depth=22),
    },
    "histogram": {
        "small": _cfg("histogram", "small", 102.27, datafile_mb=100),
        "medium": _cfg("histogram", "medium", 441.28, datafile_mb=500),
        "large": _cfg("histogram", "large", 1527.0, datafile_mb=1536),
    },
    "kmeans": {
        "small": _cfg("kmeans", "small", 4.26, dim=500, clusters=500,
                      points=500, iters=100),
        "medium": _cfg("kmeans", "medium", 16.41, dim=1000, clusters=1000,
                       points=1000, iters=100),
        "large": _cfg("kmeans", "large", 195.64, dim=5000, clusters=5000,
                      points=5000, iters=100),
    },
    "matrix-multiply": {
        "small": _cfg("matrix-multiply", "small", 5.56, n=500),
        "medium": _cfg("matrix-multiply", "medium", 16.21, n=1000),
        "large": _cfg("matrix-multiply", "large", 47.33, n=2000),
    },
    "pca": {
        "small": _cfg("pca", "small", 8.12, rows=1000, cols=1000, s=200),
        "medium": _cfg("pca", "medium", 97.85, rows=5000, cols=5000, s=200),
        "large": _cfg("pca", "large", 195.50, rows=10000, cols=10000, s=200),
    },
    "string-match": {
        "small": _cfg("string-match", "small", 56.40, datafile_mb=50),
        "medium": _cfg("string-match", "medium", 106.14, datafile_mb=100),
        "large": _cfg("string-match", "large", 212.09, datafile_mb=200),
    },
    "word-count": {
        "small": _cfg("word-count", "small", 100.65, datafile_mb=50),
        "medium": _cfg("word-count", "medium", 143.99, datafile_mb=100),
        "large": _cfg("word-count", "large", 205.88, datafile_mb=200),
    },
    "baby": {
        "small": _cfg("baby", "small", 253.64, n_iter=3_000_000, threads=3),
        "medium": _cfg("baby", "medium", 421.48, n_iter=5_000_000, threads=3),
        "large": _cfg("baby", "large", 848.56, n_iter=10_000_000, threads=3),
    },
    "cache": {
        "small": _cfg("cache", "small", 218.21, n_iter=3_000_000,
                      cap_rec_num=3_000_000, threads=5),
        "medium": _cfg("cache", "medium", 361.91, n_iter=5_000_000,
                       cap_rec_num=5_000_000, threads=5),
        "large": _cfg("cache", "large", 721.46, n_iter=10_000_000,
                      cap_rec_num=10_000_000, threads=5),
    },
    "stdhash": {
        "small": _cfg("stdhash", "small", 358.64, n_iter=3_000_000,
                      buckets=100_000, threads=2),
        "medium": _cfg("stdhash", "medium", 595.80, n_iter=5_000_000,
                       buckets=100_000, threads=2),
        "large": _cfg("stdhash", "large", 1208.3, n_iter=10_000_000,
                      buckets=100_000, threads=2),
    },
    "stdtree": {
        "small": _cfg("stdtree", "small", 415.12, n_iter=3_000_000, threads=2),
        "medium": _cfg("stdtree", "medium", 694.07, n_iter=5_000_000, threads=2),
        "large": _cfg("stdtree", "large", 1413.1, n_iter=10_000_000, threads=2),
    },
    "tiny": {
        "small": _cfg("tiny", "small", 681.35, n_iter=5_000_000,
                      buckets=30_000_000, threads=3),
        "medium": _cfg("tiny", "medium", 977.66, n_iter=5_000_000,
                       buckets=30_000_000, threads=5),
        "large": _cfg("tiny", "large", 1300.5, n_iter=5_000_000,
                      buckets=30_000_000, threads=7),
    },
}

APP_NAMES = tuple(TABLE_III)
PHOENIX_APPS = ("histogram", "kmeans", "matrix-multiply", "pca",
                "string-match", "word-count")
TKRZW_APPS = ("baby", "cache", "stdhash", "stdtree", "tiny")


def get_config(app: str, config: str) -> AppConfig:
    """Look up one Table III cell by application and configuration."""
    try:
        return TABLE_III[app][config]
    except KeyError:
        raise ConfigurationError(f"unknown app/config: {app}/{config}") from None


def make_workload(app: str, config: str = "small", scale: float = 1.0):
    """Instantiate the workload for one Table III cell.

    ``scale`` in (0, 1] shrinks iteration counts (not footprints).
    """
    if not 0 < scale <= 1:
        raise ConfigurationError(f"scale must be in (0, 1]: {scale}")
    cfg = get_config(app, config)
    # Imported here to keep configs importable without the whole package.
    from repro.workloads.gcbench import GcBench
    from repro.workloads.phoenix import (
        Histogram,
        KMeans,
        MatrixMultiply,
        Pca,
        StringMatch,
        WordCount,
    )
    from repro.workloads.tkrzw import Baby, Cache, StdHash, StdTree, Tiny

    classes = {
        "gcbench": GcBench,
        "histogram": Histogram,
        "kmeans": KMeans,
        "matrix-multiply": MatrixMultiply,
        "pca": Pca,
        "string-match": StringMatch,
        "word-count": WordCount,
        "baby": Baby,
        "cache": Cache,
        "stdhash": StdHash,
        "stdtree": StdTree,
        "tiny": Tiny,
    }
    cls = classes[app]
    return cls.from_config(cfg, scale=scale)
