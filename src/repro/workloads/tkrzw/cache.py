"""tkrzw *cache*: a capacity-bounded LRU store (CacheDBM).

The record cap keeps the working set at a fixed size; inserts beyond the
cap evict old records, so writes cycle uniformly over the capped arena.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.workloads.tkrzw.common import KvEngine

__all__ = ["Cache"]


@dataclass
class Cache(KvEngine):
    name: str = "cache"
    us_per_op: float = 3.0

    def target_pages(self, rng, op_index, n_ops, n_pages):
        # Records per page follows from cap_rec_num vs footprint; the cap
        # makes the target distribution uniform over the whole arena.
        return rng.integers(0, n_pages, size=n_ops)
