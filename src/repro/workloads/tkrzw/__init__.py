"""tkrzw in-memory key-value engine models."""

from repro.workloads.tkrzw.baby import Baby
from repro.workloads.tkrzw.cache import Cache
from repro.workloads.tkrzw.stdhash import StdHash
from repro.workloads.tkrzw.stdtree import StdTree
from repro.workloads.tkrzw.tiny import Tiny

__all__ = ["Baby", "Cache", "StdHash", "StdTree", "Tiny"]
