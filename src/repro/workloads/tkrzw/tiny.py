"""tkrzw *tiny*: TinyDBM, a compact on-memory hash store.

30 M buckets over small records: very high record density per page, so a
batch of operations dirties comparatively few distinct pages; thread
count (the Table III knob) widens the concurrently hot region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.tkrzw.common import KvEngine

__all__ = ["Tiny"]


@dataclass
class Tiny(KvEngine):
    name: str = "tiny"
    us_per_op: float = 2.0

    def target_pages(self, rng, op_index, n_ops, n_pages):
        threads = int(self.params.get("threads", 1))
        # Each thread hammers its own stripe of the bucket array; small
        # records mean many ops per page.
        stripe = max(1, n_pages // max(1, threads))
        thread_of_op = rng.integers(0, threads, size=n_ops)
        within = rng.integers(0, stripe, size=n_ops)
        return np.minimum(thread_of_op * stripe + within, n_pages - 1)
