"""Shared machinery for the tkrzw in-memory key-value engine models.

Each engine reproduces its Table III footprint and the page-level write
behaviour of ``set`` request storms: ``n_iter`` operations partitioned
over ``threads`` interleaved streams, where each operation writes the
record's page plus occasional structure pages, with a per-op compute cost
calibrated per engine (tree rebalancing, hashing, zlib compression, ...).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.errors import WorkloadError
from repro.guest.plan import PlanBuilder
from repro.workloads.base import MemoryContext, Workload

__all__ = ["KvEngine", "OPS_PER_BATCH"]

OPS_PER_BATCH = 100_000


@dataclass
class KvEngine(Workload):
    """Base for the five in-memory engines."""

    mem_mb: float = 1.0
    scale: float = 1.0
    name: str = "tkrzw"
    #: Own compute per operation, us.
    us_per_op: float = 4.0

    @classmethod
    def from_config(cls, cfg, scale: float = 1.0):
        """Build the engine from a Table III cell (scale shrinks n_iter)."""
        return cls(
            config_name=cfg.config,
            mem_mb=cfg.mem_mb,
            scale=scale,
            params=dict(cfg.params),
        )

    @property
    def footprint_pages(self) -> int:
        return int(round(self.mem_mb * PAGES_PER_MB))

    @property
    def n_iter(self) -> int:
        if "n_iter" not in self.params:
            raise WorkloadError(f"{self.name}: missing n_iter")
        return max(1, int(self.params["n_iter"] * self.scale))

    # -- per-engine hook -----------------------------------------------
    def target_pages(
        self, rng: np.random.Generator, op_index: int, n_ops: int, n_pages: int
    ) -> np.ndarray:
        """Page offsets written by a batch of ``n_ops`` operations."""
        raise NotImplementedError

    def _run(self, ctx: MemoryContext) -> None:
        arena = ctx.alloc_region(max(1, self.footprint_pages - 4), "arena")
        # crc32, not hash(): str hashes are salted per process
        # (PYTHONHASHSEED), which made runs non-reproducible.
        rng = np.random.default_rng(zlib.crc32(self.name.encode()) & 0xFFFF)
        done = 0
        plans = ctx.supports_plans
        while done < self.n_iter:
            n_ops = min(OPS_PER_BATCH, self.n_iter - done)
            offsets = self.target_pages(rng, done, n_ops, arena.n_pages)
            if plans:
                # Offsets are freshly drawn each batch, so the plan is
                # transient (no copies, no segment memoization) — the win
                # is the single kernel entry for the write+compute pair.
                ctx.run_plan(
                    PlanBuilder()
                    .write(arena.vpns[np.unique(offsets)])
                    .compute(n_ops * self.us_per_op)
                    .build_transient()
                )
            else:
                ctx.write(arena, np.unique(offsets))
                ctx.compute(n_ops * self.us_per_op)
            done += n_ops
            ctx.checkpoint_opportunity()
