"""tkrzw *stdhash*: std::unordered_map-backed store with zlib records.

100 K buckets hashing uniformly; zlib compression per record makes this
the most compute-heavy engine per operation, which dilutes tracking
overhead relative to the others.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.workloads.tkrzw.common import KvEngine

__all__ = ["StdHash"]


@dataclass
class StdHash(KvEngine):
    name: str = "stdhash"
    us_per_op: float = 12.0  # zlib record compression

    def target_pages(self, rng, op_index, n_ops, n_pages):
        return rng.integers(0, n_pages, size=n_ops)
