"""tkrzw *stdtree*: std::map (red-black tree) backed store.

Node allocations interleave across the arena; rebalancing adds clustered
rotations around each insertion point, modelled as a Gaussian spread of
extra page writes around the primary target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.tkrzw.common import KvEngine

__all__ = ["StdTree"]


@dataclass
class StdTree(KvEngine):
    name: str = "stdtree"
    us_per_op: float = 5.0
    rotation_spread_pages: float = 16.0

    def target_pages(self, rng, op_index, n_ops, n_pages):
        primary = rng.integers(0, n_pages, size=n_ops)
        n_rot = n_ops // 4
        around = primary[:n_rot] + rng.normal(
            0, self.rotation_spread_pages, size=n_rot
        ).astype(np.int64)
        around = np.clip(around, 0, n_pages - 1)
        return np.concatenate([primary, around])
