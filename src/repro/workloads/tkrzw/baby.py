"""tkrzw *baby*: an in-memory B+ tree (BabyDBM).

Random-key inserts concentrate writes on leaf pages with strong recency
locality (node splits cluster near recently grown subtrees) plus a steady
trickle of internal-node updates across the whole arena.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.tkrzw.common import KvEngine

__all__ = ["Baby"]


@dataclass
class Baby(KvEngine):
    name: str = "baby"
    us_per_op: float = 6.0
    #: Fraction of ops landing in the recently-grown leaf window.
    locality: float = 0.7
    window_frac: float = 0.05

    def target_pages(self, rng, op_index, n_ops, n_pages):
        window = max(1, int(n_pages * self.window_frac))
        base = (op_index // max(1, n_ops)) * window % max(1, n_pages - window)
        n_local = int(n_ops * self.locality)
        local = base + rng.integers(0, window, size=n_local)
        spread = rng.integers(0, n_pages, size=n_ops - n_local)
        return np.concatenate([local, spread])
