"""Workload API: memory contexts and the workload base class.

A workload is a deterministic generator of page-access batches plus its
own compute time.  It runs against a :class:`MemoryContext`, which
abstracts how memory is obtained:

* :class:`FlatContext` — plain anonymous VMAs (the CRIU / micro-benchmark
  experiments track processes with ordinary memory);
* :class:`GcContext` — regions are allocated as page-sized objects on a
  Boehm heap, and the context gives the collector allocation-triggered
  collection opportunities (the Boehm experiments link the same Phoenix
  apps against the GC, paper §VI-E).

This duality mirrors the paper: the *same* applications appear in both
the CRIU and the Boehm evaluations; only the memory substrate differs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.plan import AccessPlan
from repro.guest.process import Process

__all__ = [
    "Region",
    "MemoryContext",
    "FlatContext",
    "GcContext",
    "Workload",
]

#: Default cost of the workload's own work per page it touches.  Chosen so
#: the 1 GB array-parser pass runs ~200 ms untracked, consistent with the
#: overhead ratios of the paper's Table I (DESIGN.md §5).
DEFAULT_US_PER_PAGE = 0.76


@dataclass
class Region:
    """A contiguous page region owned by a workload."""

    name: str
    vpns: np.ndarray  # absolute VPNs, ascending
    #: GC mode only: one page-sized object id per page.
    obj_ids: np.ndarray | None = None

    @property
    def n_pages(self) -> int:
        return int(self.vpns.size)


class MemoryContext(abc.ABC):
    """How a workload touches memory."""

    #: True when the context can execute compiled access plans
    #: (:mod:`repro.guest.plan`).  Plan-aware workloads gate on this and
    #: fall back to per-batch ``write``/``read``/``compute`` calls
    #: otherwise (the GC substrate routes every touch through the heap,
    #: so raw-VPN plans do not apply to it).
    supports_plans: bool = False

    def __init__(self, kernel: GuestKernel, process: Process) -> None:
        self.kernel = kernel
        self.process = process
        self.rng = np.random.default_rng(0xC0FFEE)

    @abc.abstractmethod
    def alloc_region(self, n_pages: int, name: str = "region") -> Region: ...

    @abc.abstractmethod
    def write(self, region: Region, offsets: np.ndarray) -> None:
        """Write the pages at ``offsets`` within the region."""

    @abc.abstractmethod
    def read(self, region: Region, offsets: np.ndarray) -> None: ...

    def write_many(self, region: Region, offsets_list: list[np.ndarray]) -> None:
        """Write several batches in one submission (plan-aware contexts
        amortize the per-batch kernel entry; the default loops)."""
        for offsets in offsets_list:
            self.write(region, offsets)

    def read_many(self, region: Region, offsets_list: list[np.ndarray]) -> None:
        """Read several batches in one submission (see write_many)."""
        for offsets in offsets_list:
            self.read(region, offsets)

    def run_plan(self, plan: AccessPlan) -> None:
        """Execute a compiled access plan (plan-aware contexts only)."""
        raise WorkloadError(
            f"{type(self).__name__} does not execute access plans"
        )

    def compute(self, us: float) -> None:
        """The workload's own CPU work."""
        self.kernel.compute(self.process, us)

    def checkpoint_opportunity(self) -> None:
        """Hook between phases (GC trigger point in GC mode)."""


class FlatContext(MemoryContext):
    """Anonymous VMAs; first touch demand-pages."""

    supports_plans = True

    def alloc_region(self, n_pages: int, name: str = "region") -> Region:
        vma = self.process.space.add_vma(n_pages, name)
        return Region(name=name, vpns=vma.vpns())

    def write(self, region: Region, offsets: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return
        self.kernel.access(self.process, region.vpns[offsets], True)

    def read(self, region: Region, offsets: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return
        self.kernel.access(self.process, region.vpns[offsets], False)

    def _many(
        self, region: Region, offsets_list: list[np.ndarray], write: bool
    ) -> None:
        batches = []
        for offsets in offsets_list:
            offsets = np.asarray(offsets, dtype=np.int64)
            if offsets.size:
                batches.append((region.vpns[offsets], write))
        if batches:
            self.kernel.access_plan(self.process, batches)

    def write_many(self, region: Region, offsets_list: list[np.ndarray]) -> None:
        self._many(region, offsets_list, True)

    def read_many(self, region: Region, offsets_list: list[np.ndarray]) -> None:
        self._many(region, offsets_list, False)

    def run_plan(self, plan: AccessPlan) -> None:
        self.kernel.access_plan(self.process, plan)


class GcContext(MemoryContext):
    """Regions are page-sized GC objects; writes go through the heap.

    Besides its long-lived regions, a Boehm-linked application allocates
    short-lived temporaries (keys, strings, intermediate tuples) as it
    works; ``temp_objs_per_write_page`` models that steady allocation,
    which is what drives repeated GC cycles in the paper's Phoenix+Boehm
    runs (2..23 cycles, §VI-E).
    """

    def __init__(
        self,
        kernel: GuestKernel,
        process: Process,
        heap,
        gc,
        temp_objs_per_write_page: float = 0.5,
        temp_obj_bytes: int = 64,
    ) -> None:
        super().__init__(kernel, process)
        self.heap = heap
        self.gc = gc
        self.temp_objs_per_write_page = temp_objs_per_write_page
        self.temp_obj_bytes = temp_obj_bytes

    def alloc_region(self, n_pages: int, name: str = "region") -> Region:
        from repro.core.calibration import PAGE_SIZE

        ids = self.heap.alloc(n_pages, PAGE_SIZE)
        self.heap.add_roots(ids)  # workload data is rooted
        vpns = self.heap.obj_page[ids].copy()
        order = np.argsort(vpns)
        return Region(name=name, vpns=vpns[order], obj_ids=ids[order])

    def write(self, region: Region, offsets: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return
        assert region.obj_ids is not None
        self.heap.write_objs(region.obj_ids[offsets])
        n_temps = int(offsets.size * self.temp_objs_per_write_page)
        if n_temps:
            # Short-lived temporaries: never rooted, young garbage.
            self.heap.alloc(n_temps, self.temp_obj_bytes)

    def read(self, region: Region, offsets: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return
        assert region.obj_ids is not None
        self.heap.read_objs(region.obj_ids[offsets])

    def checkpoint_opportunity(self) -> None:
        self.gc.maybe_collect()


@dataclass
class Workload(abc.ABC):
    """Base class: subclasses define ``_run`` and their footprint."""

    config_name: str = "small"
    us_per_page: float = DEFAULT_US_PER_PAGE
    #: Extra knobs from the config table.
    params: dict = field(default_factory=dict)

    name: str = "workload"

    @property
    @abc.abstractmethod
    def footprint_pages(self) -> int:
        """Pages the workload touches (sizes the process address space)."""

    def run(self, ctx: MemoryContext) -> None:
        """Execute the workload against a memory context."""
        if self.footprint_pages <= 0:
            raise WorkloadError(f"{self.name}: empty footprint")
        self._run(ctx)

    @abc.abstractmethod
    def _run(self, ctx: MemoryContext) -> None: ...

    # -- helpers -----------------------------------------------------------
    def _touch_cost(self, ctx: MemoryContext, n_pages: int, factor: float = 1.0
                    ) -> None:
        ctx.compute(n_pages * self.us_per_page * factor)
