"""Phoenix *histogram*: bin the pixels of a bitmap file.

Reads the data file once, sequentially; the only writes are the three
256-bucket channel histograms (a few pages, rewritten every batch).
Per-page compute models ~1.4 K pixels/page of binning work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.workloads.base import MemoryContext
from repro.workloads.phoenix.common import PhoenixApp

__all__ = ["Histogram"]


@dataclass
class Histogram(PhoenixApp):
    name: str = "histogram"
    compute_factor: float = 10.0

    def _run(self, ctx: MemoryContext) -> None:
        (datafile_mb,) = self._require("datafile_mb")
        file_pages = min(
            int(datafile_mb * PAGES_PER_MB), self.footprint_pages - 4
        )
        data = ctx.alloc_region(file_pages, "datafile")
        hist = ctx.alloc_region(4, "histograms")  # 3 channels + padding
        # The input file is written once when loaded (mmap'd read-mostly
        # afterwards).
        ctx.write(hist, np.arange(hist.n_pages))

        def bin_batch(lo: int, hi: int) -> None:
            ctx.write(hist, np.arange(hist.n_pages))

        self._sequential_read(ctx, data, self.compute_factor, bin_batch)
