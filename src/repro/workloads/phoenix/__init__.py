"""Phoenix (shared-memory MapReduce) application models."""

from repro.workloads.phoenix.histogram import Histogram
from repro.workloads.phoenix.kmeans import KMeans
from repro.workloads.phoenix.matmul import MatrixMultiply
from repro.workloads.phoenix.pca import Pca
from repro.workloads.phoenix.stringmatch import StringMatch
from repro.workloads.phoenix.wordcount import WordCount

__all__ = [
    "Histogram",
    "KMeans",
    "MatrixMultiply",
    "Pca",
    "StringMatch",
    "WordCount",
]
