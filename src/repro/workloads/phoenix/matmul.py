"""Phoenix *matrix-multiply*: C = A x B over int matrices.

Three n x n regions; A and B are generated (written) once, then the
multiply streams A row-blocks and all of B while dirtying C block by
block.  Compute is cubic: calibrated at ~0.4 ns per multiply-add, which
puts the n = 500 run at ~50 ms — the paper quotes matrix-multiply
"runs in 51 ms" (§VI-E.b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGE_SIZE
from repro.workloads.base import MemoryContext
from repro.workloads.phoenix.common import BATCH_PAGES, PhoenixApp

__all__ = ["MatrixMultiply"]

ELEM_BYTES = 4
US_PER_MACC = 4.0e-4  # microseconds per multiply-add


@dataclass
class MatrixMultiply(PhoenixApp):
    name: str = "matrix-multiply"

    def _run(self, ctx: MemoryContext) -> None:
        (n,) = self._require("n")
        mat_pages = max(1, n * n * ELEM_BYTES // PAGE_SIZE)
        a = ctx.alloc_region(mat_pages, "A")
        b = ctx.alloc_region(mat_pages, "B")
        c = ctx.alloc_region(mat_pages, "C")

        for m in (a, b):
            for lo in range(0, m.n_pages, BATCH_PAGES):
                hi = min(lo + BATCH_PAGES, m.n_pages)
                ctx.write(m, np.arange(lo, hi))
                self._touch_cost(ctx, hi - lo)

        # Row-block multiply: each block reads its A rows + all of B and
        # writes its C rows.
        n_blocks = max(1, self._scaled(16))
        block = max(1, mat_pages // n_blocks)
        flops_us_total = (float(n) ** 3) * US_PER_MACC * self.scale
        for lo in range(0, mat_pages, block):
            hi = min(lo + block, mat_pages)
            ctx.read(a, np.arange(lo, hi))
            for blo in range(0, b.n_pages, BATCH_PAGES):
                bhi = min(blo + BATCH_PAGES, b.n_pages)
                ctx.read(b, np.arange(blo, bhi))
            ctx.write(c, np.arange(lo, hi))
            ctx.compute(flops_us_total * (hi - lo) / mat_pages)
            ctx.checkpoint_opportunity()
