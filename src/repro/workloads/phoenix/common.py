"""Shared machinery for the Phoenix (MapReduce) application models.

Each app reproduces the *page-level behaviour* that dirty-page tracking
observes: its Table III memory footprint, which regions it reads and
writes, in what order and proportion, and a calibrated amount of its own
compute per page touched (DESIGN.md: the substitution preserves footprint,
write pattern and write/compute ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.errors import WorkloadError
from repro.guest.plan import PlanBuilder
from repro.workloads.base import MemoryContext, Workload

__all__ = ["PhoenixApp", "BATCH_PAGES"]

BATCH_PAGES = 16384


@dataclass
class PhoenixApp(Workload):
    """Base for the six Phoenix applications."""

    mem_mb: float = 1.0
    scale: float = 1.0
    name: str = "phoenix"

    @classmethod
    def from_config(cls, cfg, scale: float = 1.0):
        """Build the app from a Table III cell (see configs.TABLE_III)."""
        return cls(
            config_name=cfg.config,
            mem_mb=cfg.mem_mb,
            scale=scale,
            params=dict(cfg.params),
        )

    @property
    def footprint_pages(self) -> int:
        return int(round(self.mem_mb * PAGES_PER_MB))

    # -- helpers -------------------------------------------------------
    def _scaled(self, n: int, minimum: int = 1) -> int:
        return max(minimum, int(round(n * self.scale)))

    def _sequential_read(
        self,
        ctx: MemoryContext,
        region,
        compute_factor: float,
        on_batch=None,
    ) -> None:
        """Stream over a region batch-wise, paying compute per page.

        The checkpoint opportunity stays *per batch* (it is the GC
        trigger point and the experiment harness's collect hook), so a
        plan can only span one batch: each read+compute pair becomes a
        frozen mini-plan, compiled once per (region, factor) and reused
        across the repeated streams of iterative apps — which is what
        lets the MMU replay them in steady state.
        """
        if ctx.supports_plans and on_batch is None:
            for plan in self._seq_plans(region, compute_factor):
                ctx.run_plan(plan)
                ctx.checkpoint_opportunity()
            return
        for lo in range(0, region.n_pages, BATCH_PAGES):
            hi = min(lo + BATCH_PAGES, region.n_pages)
            ctx.read(region, np.arange(lo, hi))
            self._touch_cost(ctx, hi - lo, compute_factor)
            if on_batch is not None:
                on_batch(lo, hi)
            ctx.checkpoint_opportunity()

    def _seq_plans(self, region, compute_factor: float) -> list:
        """Compiled per-batch plans for one sequential stream (cached;
        the cached region reference also pins it against id() reuse)."""
        cache = self.__dict__.setdefault("_seq_plan_cache", {})
        key = (id(region), compute_factor)
        hit = cache.get(key)
        if hit is not None:
            return hit[1]
        plans = []
        for lo in range(0, region.n_pages, BATCH_PAGES):
            hi = min(lo + BATCH_PAGES, region.n_pages)
            plans.append(
                PlanBuilder()
                .read(region.vpns[lo:hi])
                .compute((hi - lo) * self.us_per_page * compute_factor)
                .build()
            )
        cache[key] = (region, plans)
        return plans

    def _require(self, *names: str) -> list:
        out = []
        for n in names:
            if n not in self.params:
                raise WorkloadError(f"{self.name}: missing param {n!r}")
            out.append(self.params[n])
        return out
