"""Phoenix *string-match*: scan a keys file for matching strings.

Almost pure streaming reads over the data file with a small, rarely
written results buffer.  The paper's Boehm results make string-match the
extreme case for tracking overhead relative to useful work (232% under
/proc, §I) because its own writes are so few.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.workloads.base import MemoryContext
from repro.workloads.phoenix.common import PhoenixApp

__all__ = ["StringMatch"]


@dataclass
class StringMatch(PhoenixApp):
    name: str = "string-match"
    compute_factor: float = 12.0

    def _run(self, ctx: MemoryContext) -> None:
        (datafile_mb,) = self._require("datafile_mb")
        file_pages = min(
            int(datafile_mb * PAGES_PER_MB), self.footprint_pages - 8
        )
        data = ctx.alloc_region(file_pages, "keys-file")
        results = ctx.alloc_region(8, "results")
        ctx.write(results, np.arange(results.n_pages))

        state = {"batch": 0}

        def record_matches(lo: int, hi: int) -> None:
            # A match is found every few batches: one page write.
            if state["batch"] % 4 == 0:
                ctx.write(results, np.array([state["batch"] // 4 % results.n_pages]))
            state["batch"] += 1

        self._sequential_read(ctx, data, self.compute_factor, record_matches)
