"""Phoenix *pca*: mean and covariance of a points matrix.

Two passes over the matrix region (generate, then statistics) with a
small write region for means and a covariance strip rewritten during the
second pass.  The matrix region is sized to the Table III footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import MemoryContext
from repro.workloads.phoenix.common import BATCH_PAGES, PhoenixApp

__all__ = ["Pca"]


@dataclass
class Pca(PhoenixApp):
    name: str = "pca"
    compute_factor: float = 8.0

    def _run(self, ctx: MemoryContext) -> None:
        rows, cols, s = self._require("rows", "cols", "s")
        del rows, cols, s  # footprint (Table III) is authoritative
        out_pages = max(2, self.footprint_pages // 20)
        mat_pages = max(1, self.footprint_pages - out_pages - 4)
        mat = ctx.alloc_region(mat_pages, "matrix")
        cov = ctx.alloc_region(out_pages, "cov")

        # Pass 1: generate the matrix.
        for lo in range(0, mat.n_pages, BATCH_PAGES):
            hi = min(lo + BATCH_PAGES, mat.n_pages)
            ctx.write(mat, np.arange(lo, hi))
            self._touch_cost(ctx, hi - lo)
        ctx.checkpoint_opportunity()

        # Pass 2: means (stream read, tiny writes).
        self._sequential_read(ctx, mat, self.compute_factor)
        ctx.write(cov, np.arange(min(2, cov.n_pages)))

        # Pass 3: covariance (stream read, strip writes).
        strip = max(1, cov.n_pages // 8)
        state = {"i": 0}

        def write_strip(lo: int, hi: int) -> None:
            start = (state["i"] * strip) % cov.n_pages
            idx = (start + np.arange(strip)) % cov.n_pages
            ctx.write(cov, idx)
            state["i"] += 1

        self._sequential_read(ctx, mat, self.compute_factor, write_strip)
