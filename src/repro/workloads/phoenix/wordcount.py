"""Phoenix *word-count*: count word occurrences in a text file.

Streams the data file while scattering writes across a hash-table region
(roughly the same size as the file, per Table III's footprints) — the
highest write-page diversity of the Phoenix set, which is what stresses
per-page tracking techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.workloads.base import MemoryContext
from repro.workloads.phoenix.common import PhoenixApp

__all__ = ["WordCount"]


@dataclass
class WordCount(PhoenixApp):
    name: str = "word-count"
    compute_factor: float = 10.0
    #: Distinct hash pages dirtied per input page streamed.
    writes_per_input_page: float = 0.5

    def _run(self, ctx: MemoryContext) -> None:
        (datafile_mb,) = self._require("datafile_mb")
        file_pages = min(
            int(datafile_mb * PAGES_PER_MB), self.footprint_pages - 16
        )
        hash_pages = max(8, self.footprint_pages - file_pages - 8)
        data = ctx.alloc_region(file_pages, "text")
        table = ctx.alloc_region(hash_pages, "hash-table")
        rng = np.random.default_rng(0x5EED)

        def scatter_counts(lo: int, hi: int) -> None:
            n_writes = max(1, int((hi - lo) * self.writes_per_input_page))
            idx = rng.integers(0, table.n_pages, size=n_writes)
            ctx.write(table, np.unique(idx))
            self._touch_cost(ctx, n_writes, 0.5)

        self._sequential_read(ctx, data, self.compute_factor, scatter_counts)
