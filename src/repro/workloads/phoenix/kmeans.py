"""Phoenix *kmeans*: iterative clustering.

Two regions sized per the Phoenix implementation's int matrices: points
(p x d) read every iteration, means (c x d) rewritten every iteration.
Each iteration streams all point pages and dirties every means page —
a read-heavy workload with a concentrated, repeated write set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGE_SIZE
from repro.workloads.base import MemoryContext
from repro.workloads.phoenix.common import BATCH_PAGES, PhoenixApp

__all__ = ["KMeans"]

ELEM_BYTES = 4  # Phoenix kmeans uses int matrices


@dataclass
class KMeans(PhoenixApp):
    name: str = "kmeans"
    compute_factor: float = 4.0

    def _run(self, ctx: MemoryContext) -> None:
        dim, clusters, points, iters = self._require(
            "dim", "clusters", "points", "iters"
        )
        point_pages = max(1, points * dim * ELEM_BYTES // PAGE_SIZE)
        mean_pages = max(1, clusters * dim * ELEM_BYTES // PAGE_SIZE)
        budget = self.footprint_pages - 8
        point_pages = min(point_pages, max(1, budget - mean_pages))
        mean_pages = min(mean_pages, max(1, budget - point_pages))
        pts = ctx.alloc_region(point_pages, "points")
        means = ctx.alloc_region(mean_pages, "means")

        # Generate the input points (written once).
        for lo in range(0, pts.n_pages, BATCH_PAGES):
            hi = min(lo + BATCH_PAGES, pts.n_pages)
            ctx.write(pts, np.arange(lo, hi))
            self._touch_cost(ctx, hi - lo)
        ctx.write(means, np.arange(means.n_pages))

        for _ in range(self._scaled(iters)):
            self._sequential_read(ctx, pts, self.compute_factor)
            ctx.write(means, np.arange(means.n_pages))
            self._touch_cost(ctx, means.n_pages)
            ctx.checkpoint_opportunity()
