"""The paper's micro-benchmark (Listing 1): the array parser.

A process mlocks an array of page-aligned buffers and repeatedly writes
one word into every page, in order.  Its entire cost profile is page
writes, which makes it the cleanest probe of a tracking technique's
per-page overhead — it drives Table I, Table Vb, Fig. 3 and Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.errors import WorkloadError
from repro.guest.plan import PlanBuilder
from repro.workloads.base import MemoryContext, Workload

__all__ = ["ArrayParser"]

#: Page batch size: one quantum of the parser's inner loop.
BATCH_PAGES = 16384


@dataclass
class ArrayParser(Workload):
    """Write one word per page over ``mem_mb`` of memory, ``passes`` times."""

    mem_mb: float = 1.0
    passes: int = 1
    name: str = "arrayparser"

    def __post_init__(self) -> None:
        if self.mem_mb <= 0 or self.passes < 1:
            raise WorkloadError("mem_mb must be > 0 and passes >= 1")

    @property
    def footprint_pages(self) -> int:
        return int(round(self.mem_mb * PAGES_PER_MB))

    def _run(self, ctx: MemoryContext) -> None:
        region = ctx.alloc_region(self.footprint_pages, "array")
        if ctx.supports_plans:
            # One frozen plan per pass (identical every pass): the MMU
            # memoizes its segments, so steady-state passes replay.
            b = PlanBuilder()
            for lo in range(0, region.n_pages, BATCH_PAGES):
                hi = min(lo + BATCH_PAGES, region.n_pages)
                b.write(region.vpns[lo:hi])
                b.compute((hi - lo) * self.us_per_page)
            plan = b.build()
            # mlockall(): fault everything in up front (Listing 1 pins
            # pages) — the first execution takes the full walks.
            ctx.run_plan(plan)
            for _ in range(self.passes - 1):
                ctx.checkpoint_opportunity()
                ctx.run_plan(plan)
            return
        # Per-batch fallback (GC substrate routes touches via the heap).
        for lo in range(0, region.n_pages, BATCH_PAGES):
            hi = min(lo + BATCH_PAGES, region.n_pages)
            ctx.write(region, np.arange(lo, hi))
            self._touch_cost(ctx, hi - lo)
        for _ in range(self.passes - 1):
            ctx.checkpoint_opportunity()
            for lo in range(0, region.n_pages, BATCH_PAGES):
                hi = min(lo + BATCH_PAGES, region.n_pages)
                ctx.write(region, np.arange(lo, hi))
                self._touch_cost(ctx, hi - lo)
