"""Workloads: the paper's micro- and macro-benchmark applications."""

from repro.workloads.arrayparser import ArrayParser
from repro.workloads.base import FlatContext, GcContext, MemoryContext, Region, Workload
from repro.workloads.configs import (
    APP_NAMES,
    CONFIG_NAMES,
    PHOENIX_APPS,
    TABLE_III,
    TKRZW_APPS,
    get_config,
    make_workload,
)
from repro.workloads.gcbench import GcBench

__all__ = [
    "ArrayParser",
    "FlatContext",
    "GcContext",
    "MemoryContext",
    "Region",
    "Workload",
    "GcBench",
    "APP_NAMES",
    "CONFIG_NAMES",
    "PHOENIX_APPS",
    "TKRZW_APPS",
    "TABLE_III",
    "get_config",
    "make_workload",
]
