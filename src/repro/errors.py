"""Exception hierarchy for the OoH reproduction.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class MemoryError_(ReproError):
    """Base class for simulated-memory errors."""


class OutOfFramesError(MemoryError_):
    """The frame allocator has no free physical frames left."""


class InvalidAddressError(MemoryError_):
    """An address is outside the relevant address space."""


class ProtectionFault(MemoryError_):
    """An access violated page protections and no handler resolved it."""


class VmcsError(ReproError):
    """Invalid VMCS access (bad field, wrong CPU mode, no current VMCS)."""


#: Hypercall error codes a retry policy should treat as transient.
TRANSIENT_HYPERCALL_CODES = frozenset({"EAGAIN", "EBUSY", "EINTR"})


class HypercallError(ReproError):
    """A hypercall was rejected by the hypervisor.

    ``code`` is a machine-readable errno-style string; retry policies use
    it to distinguish transient failures (EAGAIN/EBUSY/EINTR — retry with
    backoff) from permanent ones (EINVAL/ENOSYS — fail fast).
    """

    def __init__(self, message: str, code: str = "EINVAL") -> None:
        super().__init__(message)
        self.code = code

    @property
    def transient(self) -> bool:
        return self.code in TRANSIENT_HYPERCALL_CODES


class TransientError(ReproError):
    """A failure that is expected to clear on retry (resource pressure,
    injected fault, lost notification); callers may retry with backoff."""


class FaultInjectedError(ReproError):
    """Raised by a fault-injection site that models outright failure with
    no organic errno analogue (see :mod:`repro.faults`)."""


class ResyncRequired(ReproError):
    """Dirty-page log state may have lost events (overflow, lost IPI);
    the caller must conservatively resynchronise — treat the whole tracked
    region as dirty — before trusting the log again."""


class TrackerDetachedError(ResyncRequired):
    """A collect hit an attachment that was force-detached underneath it
    (crash-only teardown).  Any dirty addresses logged between the last
    successful collect and the detach are gone, so this *is* a lost-event
    condition: recovery layers (the fallback chain) must conservatively
    resynchronise, exactly as for :class:`ResyncRequired`."""


class PmlError(ReproError):
    """PML circuit misuse (e.g. enabling without a buffer configured)."""


class GuestError(ReproError):
    """Guest kernel error (unknown PID, bad registration, ...)."""


class TrackingError(ReproError):
    """A dirty-page-tracking technique was misused."""


class CheckpointError(ReproError):
    """CRIU-style checkpoint/restore failure."""


class GcError(ReproError):
    """Boehm-style garbage collector failure."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""
