#!/usr/bin/env python
"""Live migration: PML's original job, coexisting with a guest user.

The hypervisor pre-copies a VM using its own PML dirty logging while —
simultaneously — a tracker inside the guest uses EPML on one process.
This exercises the paper's coordination flags (§IV-C item 3): the two
PML consumers share the hardware without stepping on each other.

Run:  python examples/live_migration.py
"""

import numpy as np

from repro.core.tracking import Technique, make_tracker
from repro.experiments.harness import build_stack
from repro.hypervisor.migration import LiveMigration


def main() -> None:
    print(__doc__)
    stack = build_stack(vm_mb=64)
    kernel = stack.kernel

    # A guest process with a hot writable region.
    proc = kernel.spawn("db", n_pages=4096)
    proc.space.add_vma(4096, "table")
    kernel.access(proc, np.arange(4096), True)

    # Guest-side tracking via EPML, started before the migration.
    tracker = make_tracker(Technique.EPML, kernel, proc)
    tracker.start()

    state = {"i": 0}

    def workload_round() -> None:
        # The database keeps writing a sliding window of 128 pages.
        lo = (state["i"] * 128) % 3968
        kernel.access(proc, np.arange(lo, lo + 128), True)
        state["i"] += 1

    migration = LiveMigration(
        stack.hv, stack.vm, stop_threshold_pages=256, max_rounds=20
    )
    report = migration.migrate(workload_round)

    print(f"converged:        {report.converged}")
    print(f"pre-copy rounds:  {report.rounds}")
    print(f"pages per round:  {report.pages_per_round}")
    print(f"total pages sent: {report.total_pages_sent:,}")
    print(f"downtime:         {report.downtime_us / 1000:.2f} ms")
    print(f"total time:       {report.total_us / 1000:.2f} ms")

    # The guest tracker kept working throughout the migration.
    dirty = tracker.collect()
    tracker.stop()
    print(f"guest EPML tracker saw {dirty.size} dirty pages during migration")
    assert dirty.size > 0


if __name__ == "__main__":
    main()
