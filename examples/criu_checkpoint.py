#!/usr/bin/env python
"""CRIU scenario: checkpoint a running key-value store, then restore it.

Reproduces the paper's §VI-F setup at example scale: a tkrzw-baby set
storm runs inside the VM while CRIU tracks it and takes an incremental
dump; the checkpoint is then restored into a fresh process and verified
page-for-page.  Compare the memory-dump (MD) and memory-write (MW) phases
across /proc, SPML, and EPML — EPML's MD is a plain ring-buffer drain.

Run:  python examples/criu_checkpoint.py
"""

import numpy as np

from repro.core.tracking import Technique
from repro.experiments.harness import build_stack
from repro.trackers.criu import Criu, restore
from repro.workloads import FlatContext, make_workload


def checkpoint_with(technique: Technique) -> None:
    stack = build_stack(vm_mb=2048)
    workload = make_workload("baby", "small", scale=0.01)
    proc = stack.kernel.spawn("baby", n_pages=workload.footprint_pages + 64)
    ctx = FlatContext(stack.kernel, proc)

    criu = Criu(stack.kernel, technique)
    session = criu.begin(proc)  # start dirty tracking
    workload.run(ctx)  # the store keeps serving set requests
    report = session.dump()  # freeze -> dump dirty pages -> thaw
    image = session.finish()

    clone = restore(stack.kernel, image)
    original = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    restored = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    ok = np.array_equal(original, restored)
    print(
        f"{technique.value:>5}: MD={report.phases.md_us / 1000:9.1f} ms"
        f"  MW={report.phases.mw_us / 1000:9.1f} ms"
        f"  pages={report.pages_dumped:7d}"
        f"  restore-verified={ok}"
    )
    assert ok, "restored memory does not match"


def lazy_restore_demo() -> None:
    """CRIU's lazy-pages mode: restore O(working set), not O(image)."""
    from repro.trackers.criu import lazy_restore

    stack = build_stack(vm_mb=2048)
    workload = make_workload("baby", "small", scale=0.01)
    proc = stack.kernel.spawn("baby", n_pages=workload.footprint_pages + 64)
    workload.run(FlatContext(stack.kernel, proc))
    image, _ = Criu(stack.kernel, Technique.EPML).checkpoint(proc)

    lazy = lazy_restore(stack.kernel, image)
    # The restored process only touches a fraction of its memory.
    hot = np.arange(0, 2000)
    stack.kernel.access(lazy.process, hot, False)
    print(
        f"\nlazy restore: fetched {lazy.stats.pages_fetched:,} of "
        f"{lazy.stats.image_pages:,} image pages "
        f"({lazy.stats.fetch_fraction:.1%}) — the rest never left the image"
    )
    lazy.finish()


def main() -> None:
    print(__doc__)
    for technique in (Technique.PROC, Technique.SPML, Technique.EPML):
        checkpoint_with(technique)
    lazy_restore_demo()


if __name__ == "__main__":
    main()
