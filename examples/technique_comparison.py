#!/usr/bin/env python
"""Technique shoot-out on the paper's micro-benchmark (Listing 1).

Sweeps the tracked memory size and prints a Fig. 4 / Table I style
comparison of all four techniques: overhead on the tracked application
and on the tracker, plus the dominant cost driver of each.

Run:  python examples/technique_comparison.py [--full]
"""

import sys

from repro.experiments.harness import run_microbench
from repro.experiments.tables import render_table

BOTTLENECK = {
    "proc": "pagemap walk + soft-dirty faults",
    "ufd": "userspace fault handling",
    "spml": "GPA->GVA reverse mapping",
    "epml": "ring-buffer copy (negligible)",
}


def main() -> None:
    print(__doc__)
    sizes = (1, 10, 50, 100, 250, 500, 1024) if "--full" in sys.argv else (
        1, 10, 100)
    rows = []
    for mb in sizes:
        for tech in ("proc", "ufd", "spml", "epml"):
            r = run_microbench(tech, mem_mb=mb)
            rows.append([
                f"{mb}MB",
                tech,
                f"{r.slowdown_tracked:.2f}x",
                f"{r.overhead_tracker_pct:,.0f}%",
                BOTTLENECK[tech],
            ])
    print(render_table(
        ["size", "technique", "tracked slowdown", "tracker overhead",
         "dominant cost"],
        rows,
    ))
    print(
        "\nThe paper's ranking (most to least costly): SPML, ufd, /proc, "
        "EPML — with the ufd/SPML crossover around 250 MB."
    )


if __name__ == "__main__":
    main()
