#!/usr/bin/env python
"""Quickstart: track a process's dirty pages with every technique.

Builds the simulated stack (host -> Xen-like hypervisor -> VM -> Linux-like
guest kernel), spawns a process that writes some pages, and collects its
dirty set through each of the paper's techniques — /proc soft-dirty,
userfaultfd, SPML, EPML — plus the zero-cost oracle.  All five must agree
on *what* was dirtied; they differ wildly in what the tracking *costs*.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.clock import SimClock, World
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor


def track_once(technique: Technique) -> None:
    # -- build the stack -------------------------------------------------
    clock = SimClock()
    hypervisor = Hypervisor(clock, CostModel(), host_mem_mb=256)
    vm = hypervisor.create_vm("demo-vm", mem_mb=64)
    kernel = GuestKernel(vm)

    # -- a process with a 4 MiB working set -------------------------------
    proc = kernel.spawn("app", mem_mb=8)
    proc.space.add_vma(1024, "heap")
    kernel.access(proc, np.arange(1024), True)  # populate

    # -- track it ----------------------------------------------------------
    tracker = make_tracker(technique, kernel, proc)
    with tracker:
        # The app writes 3 scattered pages and reads 2 others.
        kernel.access(proc, [10, 500, 900], True)
        kernel.access(proc, [20, 30], False)
        dirty = tracker.collect()

    print(
        f"{technique.value:>7}: dirty pages = {sorted(int(v) for v in dirty)}"
        f"  | tracker time = {clock.world_us(World.TRACKER) / 1000:8.3f} ms"
        f"  | wall = {clock.now_us / 1000:8.3f} ms"
    )


def main() -> None:
    print(__doc__)
    for technique in Technique:
        track_once(technique)


if __name__ == "__main__":
    main()
