#!/usr/bin/env python
"""Boehm GC scenario: GCBench with dirty-page-driven minor collections.

Runs the classic GCBench torture test on the simulated GC heap under
/proc, SPML and EPML.  Watch the per-cycle pause times: the first (full)
cycle carries SPML's reverse-mapping bill, after which its cached
translations make minor cycles cheap; /proc pays a pagemap walk every
cycle; EPML only drains a ring buffer.

Run:  python examples/boehm_gc.py
"""

from repro.core.tracking import Technique
from repro.experiments.harness import build_stack
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams
from repro.workloads import GcContext, make_workload


def run_gcbench(technique: Technique) -> None:
    workload = make_workload("gcbench", "small", scale=0.005)
    stack = build_stack(vm_mb=512)
    proc = stack.kernel.spawn("gcbench", n_pages=80_000)
    heap = GcHeap(stack.kernel, proc, heap_pages=64_000)
    gc = BoehmGc(
        stack.kernel, heap, technique,
        GcParams(threshold_bytes=2 * 1024 * 1024),
    )
    ctx = GcContext(stack.kernel, proc, heap, gc)
    with gc:
        workload.run(ctx)

    pauses = ", ".join(f"{c.pause_us / 1000:.1f}" for c in gc.cycles[:8])
    print(f"\n{technique.value} — {len(gc.cycles)} GC cycles")
    print(f"  pause times (ms): {pauses}{' ...' if len(gc.cycles) > 8 else ''}")
    print(f"  total GC time:    {gc.total_gc_us / 1000:.1f} ms")
    print(f"  live objects:     {heap.n_live:,}")
    freed = sum(c.n_freed for c in gc.cycles)
    print(f"  objects reclaimed: {freed:,}")


def main() -> None:
    print(__doc__)
    for technique in (Technique.PROC, Technique.SPML, Technique.EPML):
        run_gcbench(technique)


if __name__ == "__main__":
    main()
