#!/usr/bin/env python
"""OoH-SPP scenario: sub-page overflow guards (the paper's §III-D plan).

A hardened allocator places an inaccessible guard after every object to
catch buffer overflows synchronously.  With page-granular protection the
guard wastes 4 KiB per allocation; with Intel SPP exposed to the guest
via OoH, guards shrink to one 128-byte sub-page — a 32x reduction — and
even *intra-page* overruns are caught.

Run:  python examples/secure_heap_spp.py
"""

import numpy as np

from repro.core.oohspp import OohSpp
from repro.experiments.harness import build_stack
from repro.trackers.secureheap import GuardMode, OverflowDetected, SecureHeap


def demo(mode: GuardMode) -> SecureHeap:
    stack = build_stack(vm_mb=256)
    spp = OohSpp(stack.kernel)
    spp.init()
    proc = stack.kernel.spawn("hardened-app", n_pages=40_000)
    heap = SecureHeap(stack.kernel, proc, spp, mode, heap_pages=32_000)

    rng = np.random.default_rng(1)
    allocs = [heap.alloc(int(s)) for s in rng.integers(16, 512, size=500)]

    # Legal writes are fine.
    heap.write(allocs[0], 0, allocs[0].size_bytes)

    # A classic off-by-N overflow.
    overflowing = allocs[42]
    try:
        heap.write(overflowing, 0, overflowing.usable_subpages * 128 + 1)
        caught = False
    except OverflowDetected as e:
        caught = True
        detail = e

    print(f"\n{mode.value} guards:")
    print(f"  allocations:        {len(allocs)}")
    print(f"  payload bytes:      {heap.payload_bytes:,}")
    print(f"  guard waste bytes:  {heap.guard_waste_bytes:,} "
          f"(ratio {heap.waste_ratio:.2f})")
    if mode is GuardMode.SUBPAGE:
        print(f"  intra-page overflow caught: {caught} ({detail})")
    else:
        print(f"  intra-page overflow caught: {caught} "
              "(page guards only fire at page crossings)")
    return heap


def main() -> None:
    print(__doc__)
    page = demo(GuardMode.PAGE)
    sub = demo(GuardMode.SUBPAGE)
    factor = page.guard_waste_bytes / sub.guard_waste_bytes
    print(f"\n=> SPP reduces guard waste by {factor:.1f}x "
          "(paper §III-D predicts ~32x for pure guards)")


if __name__ == "__main__":
    main()
